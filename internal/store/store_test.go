package store

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// key derives a distinct canonical key from a label.
func key(label string) string {
	sum := sha256.Sum256([]byte(label))
	return hex.EncodeToString(sum[:])
}

func open(t *testing.T, dir string, max int) *Store {
	t.Helper()
	s, err := Open(dir, Options{MaxEntries: max})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestPutGetRoundTrip(t *testing.T) {
	s := open(t, t.TempDir(), 0)
	k := key("a")
	want := []byte(`{"report": 1}`)
	if err := s.Put(k, want); err != nil {
		t.Fatal(err)
	}
	got, ok := s.Get(k)
	if !ok || string(got) != string(want) {
		t.Fatalf("Get = %q/%v, want %q", got, ok, want)
	}
	if _, ok := s.Get(key("missing")); ok {
		t.Fatal("hit on a missing key")
	}
	st := s.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Puts != 1 || st.Entries != 1 {
		t.Fatalf("stats %+v", st)
	}
}

func TestPersistsAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir, 0)
	k := key("persist")
	if err := s.Put(k, []byte("payload")); err != nil {
		t.Fatal(err)
	}

	s2 := open(t, dir, 0)
	if s2.Len() != 1 {
		t.Fatalf("reopened store has %d entries", s2.Len())
	}
	got, ok := s2.Get(k)
	if !ok || string(got) != "payload" {
		t.Fatalf("reopened Get = %q/%v", got, ok)
	}
}

func TestSiblingProcessVisibility(t *testing.T) {
	// Two stores over one directory, as two coemud processes would be:
	// a write through either must be readable through the other even
	// though the reader's index has never seen the key.
	dir := t.TempDir()
	a := open(t, dir, 0)
	b := open(t, dir, 0)
	k := key("shared")
	if err := a.Put(k, []byte("from-a")); err != nil {
		t.Fatal(err)
	}
	got, ok := b.Get(k)
	if !ok || string(got) != "from-a" {
		t.Fatalf("sibling Get = %q/%v", got, ok)
	}
}

func TestAtomicWriteLeavesNoTempFiles(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir, 0)
	for i := 0; i < 10; i++ {
		if err := s.Put(key(fmt.Sprintf("k%d", i)), []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	err := filepath.Walk(dir, func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		if !info.IsDir() {
			if _, ok := keyOfFile(info.Name()); !ok {
				t.Fatalf("stray file %s", path)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestLRUEviction(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir, 3)
	keys := []string{key("1"), key("2"), key("3")}
	for _, k := range keys {
		if err := s.Put(k, []byte(k)); err != nil {
			t.Fatal(err)
		}
	}
	// Touch the oldest so it is no longer the LRU victim.
	if _, ok := s.Get(keys[0]); !ok {
		t.Fatal("touch miss")
	}
	if err := s.Put(key("4"), []byte("4")); err != nil {
		t.Fatal(err)
	}
	if s.Len() != 3 {
		t.Fatalf("len %d after eviction", s.Len())
	}
	if _, ok := s.Get(keys[1]); ok {
		t.Fatal("LRU victim survived")
	}
	if _, ok := s.Get(keys[0]); !ok {
		t.Fatal("recently used entry evicted")
	}
	if ev := s.Stats().Evictions; ev != 1 {
		t.Fatalf("evictions %d, want 1", ev)
	}
	// The evicted entry's file is gone from disk too.
	if _, err := os.Stat(filepath.Join(dir, keys[1][:2], keys[1]+".json")); !os.IsNotExist(err) {
		t.Fatalf("evicted file still present (err=%v)", err)
	}
}

func TestRecencySurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir, -1)
	old, fresh := key("old"), key("fresh")
	if err := s.Put(old, []byte("old")); err != nil {
		t.Fatal(err)
	}
	// Backdate the old entry well past any filesystem mtime granularity.
	past := time.Now().Add(-time.Hour)
	if err := os.Chtimes(filepath.Join(dir, old[:2], old+".json"), past, past); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(fresh, []byte("fresh")); err != nil {
		t.Fatal(err)
	}

	// Reopen with capacity 1: the adopted order must evict by mtime,
	// keeping the fresh entry.
	s2 := open(t, dir, 1)
	if _, ok := s2.Get(fresh); !ok {
		t.Fatal("fresh entry evicted on reopen")
	}
	if _, ok := s2.Get(old); ok {
		t.Fatal("stale entry survived a capacity-1 reopen")
	}
}

func TestBadKeysRejected(t *testing.T) {
	s := open(t, t.TempDir(), 0)
	for _, k := range []string{"", "short", "../../../../etc/passwd",
		key("x")[:63] + "Z", key("y") + "0"} {
		if err := s.Put(k, []byte("x")); err == nil {
			t.Fatalf("Put accepted key %q", k)
		}
		if _, ok := s.Get(k); ok {
			t.Fatalf("Get accepted key %q", k)
		}
	}
}

func TestOpenIgnoresForeignFiles(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "README.txt"), []byte("hi"), 0o644); err != nil {
		t.Fatal(err)
	}
	s := open(t, dir, 0)
	if s.Len() != 0 {
		t.Fatalf("foreign files indexed: %d", s.Len())
	}
}

func TestConcurrentPutGet(t *testing.T) {
	s := open(t, t.TempDir(), 64)
	done := make(chan error, 8)
	for w := 0; w < 8; w++ {
		go func(w int) {
			for i := 0; i < 50; i++ {
				k := key(fmt.Sprintf("w%d-%d", w, i%10))
				if err := s.Put(k, []byte(k)); err != nil {
					done <- err
					return
				}
				if got, ok := s.Get(k); ok && string(got) != k {
					done <- fmt.Errorf("corrupt read for %s", k)
					return
				}
			}
			done <- nil
		}(w)
	}
	for w := 0; w < 8; w++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

func TestByteBoundEviction(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{MaxEntries: -1, MaxBytes: 100})
	if err != nil {
		t.Fatal(err)
	}
	payload := make([]byte, 40)
	for i, label := range []string{"a", "b", "c"} {
		if err := s.Put(key(label), payload); err != nil {
			t.Fatal(err)
		}
		// Distinct mtimes so the LRU order is unambiguous on coarse
		// filesystem clocks.
		past := time.Now().Add(time.Duration(i-10) * time.Second)
		os.Chtimes(filepath.Join(dir, key(label)[:2], key(label)+".json"), past, past)
		e := s.byKey[key(label)]
		e.used = past
	}
	// 3x40 = 120 > 100: "a" (least recently used) must have been
	// evicted by the third Put.
	if _, ok := s.Get(key("a")); ok {
		t.Fatal("byte bound did not evict the LRU entry")
	}
	if _, ok := s.Get(key("b")); !ok {
		t.Fatal("byte bound evicted more than needed")
	}
	st := s.Stats()
	if st.Entries != 2 || st.Bytes != 80 || st.Evictions != 1 {
		t.Fatalf("stats %+v, want 2 entries / 80 bytes / 1 eviction", st)
	}
}

func TestByteBoundAdoptedOnReopen(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{MaxEntries: -1})
	if err != nil {
		t.Fatal(err)
	}
	for _, label := range []string{"x", "y", "z"} {
		if err := s.Put(key(label), make([]byte, 40)); err != nil {
			t.Fatal(err)
		}
	}
	if got := s.Bytes(); got != 120 {
		t.Fatalf("bytes = %d, want 120", got)
	}
	// Reopening with a byte bound trims adopted entries down to it.
	s2, err := Open(dir, Options{MaxEntries: -1, MaxBytes: 90})
	if err != nil {
		t.Fatal(err)
	}
	if s2.Len() != 2 || s2.Bytes() != 80 {
		t.Fatalf("reopened: %d entries, %d bytes; want 2/80", s2.Len(), s2.Bytes())
	}
	// Adoption trimming is not counted as an eviction, matching the
	// entry-bound behavior.
	if ev := s2.Stats().Evictions; ev != 0 {
		t.Fatalf("adoption trimming counted %d evictions", ev)
	}
}

func TestOversizedPutNotAdmitted(t *testing.T) {
	s, err := Open(t.TempDir(), Options{MaxEntries: -1, MaxBytes: 100})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put(key("small"), make([]byte, 40)); err != nil {
		t.Fatal(err)
	}
	// A payload over the whole budget must not wipe the store to make
	// room for itself.
	if err := s.Put(key("huge"), make([]byte, 200)); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(key("huge")); ok {
		t.Fatal("oversized payload was admitted")
	}
	if _, ok := s.Get(key("small")); !ok {
		t.Fatal("oversized put evicted an unrelated entry")
	}
}

func TestGetAdoptionEnforcesByteBound(t *testing.T) {
	dir := t.TempDir()
	writer, err := Open(dir, Options{MaxEntries: -1})
	if err != nil {
		t.Fatal(err)
	}
	reader, err := Open(dir, Options{MaxEntries: -1, MaxBytes: 100})
	if err != nil {
		t.Fatal(err)
	}
	// A sibling process fills the directory past the reader's budget;
	// the reader adopts entries through Get hits and must trim.
	for i, label := range []string{"a", "b", "c"} {
		if err := writer.Put(key(label), make([]byte, 40)); err != nil {
			t.Fatal(err)
		}
		if _, ok := reader.Get(key(label)); !ok {
			t.Fatalf("reader missed sibling entry %d", i)
		}
	}
	if b := reader.Bytes(); b > 100 {
		t.Fatalf("reader index holds %d bytes, over its 100-byte budget", b)
	}
}

func TestGetDoesNotAdoptOversizedSiblingEntry(t *testing.T) {
	dir := t.TempDir()
	writer, err := Open(dir, Options{MaxEntries: -1})
	if err != nil {
		t.Fatal(err)
	}
	reader, err := Open(dir, Options{MaxEntries: -1, MaxBytes: 100})
	if err != nil {
		t.Fatal(err)
	}
	if err := reader.Put(key("mine"), make([]byte, 40)); err != nil {
		t.Fatal(err)
	}
	// The sibling (unbounded) writes an entry over the reader's whole
	// budget: the reader must serve it without adopting it — adoption
	// would evict everything else.
	if err := writer.Put(key("huge"), make([]byte, 200)); err != nil {
		t.Fatal(err)
	}
	if data, ok := reader.Get(key("huge")); !ok || len(data) != 200 {
		t.Fatalf("sibling entry not served (%d bytes, ok=%v)", len(data), ok)
	}
	if _, ok := reader.Get(key("mine")); !ok {
		t.Fatal("serving an oversized sibling entry evicted an unrelated entry")
	}
	if b := reader.Bytes(); b != 40 {
		t.Fatalf("reader indexed %d bytes, want 40 (oversized entry unindexed)", b)
	}
}
