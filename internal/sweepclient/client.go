// Package sweepclient is the resilient client side of coemud's
// /v1/sweep wire protocol: it drives a sweep's expanded points against
// one or more daemons and keeps going when the transport, a daemon, or
// an individual point fails.
//
// Resilience has three layers:
//
//   - Retries with exponential backoff and jitter. Transport errors,
//     5xx responses and mid-stream disconnects are transient; the
//     client backs off (honoring a 503's Retry-After) and tries again.
//     A 4xx response other than 503 is permanent and aborts the run.
//   - Failover. The client carries a list of daemon base URLs and
//     rotates to the next on every transient failure, so a sweep
//     survives one daemon dying mid-stream as long as a sibling —
//     typically sharing the same persistent store — is reachable.
//   - Store-aware resumption. Lines received before a disconnect are
//     kept; each retry round re-submits only the still-missing points.
//     Since completed points were written through to the daemons'
//     shared store, a resumed round replays them without engine runs,
//     and the reassembled stream is byte-identical to an unfaulted
//     one (reports are canonical bytes end to end).
//
// Per-point failures reported by the daemon (an injected worker panic,
// a run timeout) are also retried: the daemon draws fresh fault seeds
// per job, so a retry is not doomed to repeat the fault. Only when the
// retry budget is exhausted does a point keep its error line.
package sweepclient

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand/v2"
	"net/http"
	"strconv"
	"strings"
	"time"

	"coemu/internal/service"
	"coemu/internal/spec"
)

// Defaults for the zero Options values.
const (
	DefaultRetries     = 8
	DefaultBaseBackoff = 100 * time.Millisecond
	DefaultMaxBackoff  = 5 * time.Second
)

// ErrRetriesExhausted marks points (and runs) that failed every
// attempt within the retry budget.
var ErrRetriesExhausted = errors.New("sweepclient: retries exhausted")

// Options configures a Client.
type Options struct {
	// URLs are the coemud base URLs ("http://host:8080") to fail over
	// across, tried in order. At least one is required.
	URLs []string
	// Retries bounds how many transient failures (across all rounds)
	// the client rides out before giving up; 0 means DefaultRetries,
	// negative disables retries entirely.
	Retries int
	// BaseBackoff and MaxBackoff shape the exponential backoff between
	// attempts; zero values take the defaults.
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
	// HTTPClient overrides the transport (nil uses a client with a
	// generous timeout, since a sweep response streams for the whole
	// grid).
	HTTPClient *http.Client
	// Logf, when set, receives one line per retry/failover decision.
	Logf func(format string, args ...any)
}

// Client drives sweeps against a set of coemud daemons.
type Client struct {
	urls    []string
	cur     int // next URL to try; advances on transient failure
	retries int
	base    time.Duration
	max     time.Duration
	http    *http.Client
	logf    func(format string, args ...any)
}

// New builds a client; it fails only on an empty URL list.
func New(opts Options) (*Client, error) {
	if len(opts.URLs) == 0 {
		return nil, errors.New("sweepclient: no daemon URLs")
	}
	c := &Client{
		urls:    make([]string, len(opts.URLs)),
		retries: opts.Retries,
		base:    opts.BaseBackoff,
		max:     opts.MaxBackoff,
		http:    opts.HTTPClient,
		logf:    opts.Logf,
	}
	for i, u := range opts.URLs {
		u = strings.TrimRight(strings.TrimSpace(u), "/")
		if u == "" {
			return nil, fmt.Errorf("sweepclient: empty daemon URL at position %d", i)
		}
		c.urls[i] = u
	}
	if c.retries == 0 {
		c.retries = DefaultRetries
	} else if c.retries < 0 {
		c.retries = 0
	}
	if c.base <= 0 {
		c.base = DefaultBaseBackoff
	}
	if c.max <= 0 {
		c.max = DefaultMaxBackoff
	}
	if c.http == nil {
		c.http = &http.Client{Timeout: 30 * time.Minute}
	}
	if c.logf == nil {
		c.logf = func(string, ...any) {}
	}
	return c, nil
}

// RunPoints runs every expanded point to a settled SweepLine, indexed
// and named like the local -grid stream so the reassembled NDJSON is
// byte-identical line for line. rawAgg carries the daemon's own
// aggregate line verbatim when the very first attempt delivered every
// point cleanly (so cache/store hit counters can be relayed); it is
// nil whenever the stream had to be reassembled across attempts.
//
// The returned error is non-nil only for permanent failures: a 4xx
// rejection, context cancellation, or a wholly exhausted retry budget
// with no progress possible. Per-point errors that survive the budget
// are reported in their lines' Error fields, matching daemon behavior.
func (c *Client) RunPoints(ctx context.Context, points []*spec.Spec) (lines []service.SweepLine, rawAgg []byte, err error) {
	if len(points) == 0 {
		return nil, nil, errors.New("sweepclient: sweep has no points")
	}
	got := make([]*service.SweepLine, len(points))
	lastErr := make(map[int]string)

	attempt := 0
	for {
		missing := missingIndexes(got)
		if len(missing) == 0 {
			break
		}
		res, aggBytes, aerr := c.attempt(ctx, points, missing, got, lastErr)
		if aerr == nil {
			if attempt == 0 && res == len(points) && len(missingIndexes(got)) == 0 {
				rawAgg = aggBytes
			}
			if len(missingIndexes(got)) == 0 {
				break
			}
			// The daemon answered but some points failed; fall through
			// to the retry accounting below.
			aerr = fmt.Errorf("%d point(s) failed", len(missingIndexes(got)))
		} else if permanent(aerr) {
			return nil, nil, aerr
		}
		if attempt >= c.retries {
			c.logf("sweepclient: giving up after %d attempt(s): %v", attempt+1, aerr)
			break
		}
		delay := c.backoff(attempt, aerr)
		c.logf("sweepclient: attempt %d/%d failed (%v); next daemon %s in %v",
			attempt+1, c.retries+1, aerr, c.urls[c.cur], delay)
		select {
		case <-ctx.Done():
			return nil, nil, ctx.Err()
		case <-time.After(delay):
		}
		attempt++
	}

	return settleLines(points, got, lastErr), rawAgg, nil
}

// settleLines turns the per-point state of a finished run into the
// final line slice: received lines verbatim, and for points the retry
// budget abandoned, an error line shaped like a daemon-side failure.
func settleLines(points []*spec.Spec, got []*service.SweepLine, lastErr map[int]string) []service.SweepLine {
	out := make([]service.SweepLine, len(points))
	for i := range points {
		if got[i] != nil {
			out[i] = *got[i]
			continue
		}
		line := service.SweepLine{Index: i, Name: points[i].Name}
		if h, herr := points[i].CanonicalHash(); herr == nil {
			line.Hash = h
		}
		if msg, ok := lastErr[i]; ok {
			line.Error = msg
		} else {
			line.Error = ErrRetriesExhausted.Error()
		}
		out[i] = line
	}
	return out
}

// missingIndexes lists the points that still need a clean line.
func missingIndexes(got []*service.SweepLine) []int {
	var idx []int
	for i, ln := range got {
		if ln == nil {
			idx = append(idx, i)
		}
	}
	return idx
}

// permanentError wraps rejections that retrying cannot fix.
type permanentError struct{ err error }

func (p *permanentError) Error() string { return p.err.Error() }
func (p *permanentError) Unwrap() error { return p.err }

func permanent(err error) bool {
	var p *permanentError
	return errors.As(err, &p)
}

// retryAfterError carries a 503's Retry-After hint through to backoff.
type retryAfterError struct {
	err   error
	delay time.Duration
}

func (r *retryAfterError) Error() string { return r.err.Error() }
func (r *retryAfterError) Unwrap() error { return r.err }

// attempt posts the missing points as a {"specs": [...]} batch to the
// current daemon and folds the streamed lines into got. Clean lines
// stick (their Index remapped from batch position to grid position);
// error lines only record lastErr so the point is retried. Returns the
// number of clean lines received this attempt and, when the stream
// completed, the daemon's raw aggregate line. A transport error, bad
// status or truncated stream rotates the client to the next URL and
// returns a transient error; lines received before the cut are kept.
func (c *Client) attempt(ctx context.Context, points []*spec.Spec, missing []int, got []*service.SweepLine, lastErr map[int]string) (clean int, aggLine []byte, err error) {
	url := c.urls[c.cur]
	rotate := func() { c.cur = (c.cur + 1) % len(c.urls) }

	specs := make([]json.RawMessage, len(missing))
	for bi, oi := range missing {
		b, merr := json.Marshal(points[oi])
		if merr != nil {
			return 0, nil, &permanentError{fmt.Errorf("sweepclient: encode point %d: %w", oi, merr)}
		}
		specs[bi] = b
	}
	body, merr := json.Marshal(map[string]any{"specs": specs})
	if merr != nil {
		return 0, nil, &permanentError{fmt.Errorf("sweepclient: encode batch: %w", merr)}
	}

	req, rerr := http.NewRequestWithContext(ctx, http.MethodPost, url+"/v1/sweep", bytes.NewReader(body))
	if rerr != nil {
		return 0, nil, &permanentError{rerr}
	}
	req.Header.Set("Content-Type", "application/json")
	resp, derr := c.http.Do(req)
	if derr != nil {
		rotate()
		return 0, nil, fmt.Errorf("sweepclient: %s: %w", url, derr)
	}
	defer resp.Body.Close()

	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		serr := fmt.Errorf("sweepclient: %s: %s: %s", url, resp.Status, strings.TrimSpace(string(msg)))
		switch {
		case resp.StatusCode == http.StatusServiceUnavailable:
			rotate()
			if d := parseRetryAfter(resp.Header.Get("Retry-After")); d > 0 {
				return 0, nil, &retryAfterError{err: serr, delay: d}
			}
			return 0, nil, serr
		case resp.StatusCode >= 500:
			rotate()
			return 0, nil, serr
		default:
			return 0, nil, &permanentError{serr}
		}
	}

	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<24)
	sawAgg := false
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		if bytes.HasPrefix(line, []byte(`{"aggregate"`)) {
			aggLine = append([]byte(nil), line...)
			aggLine = append(aggLine, '\n')
			sawAgg = true
			break
		}
		var ln service.SweepLine
		if uerr := json.Unmarshal(line, &ln); uerr != nil {
			rotate()
			return clean, nil, fmt.Errorf("sweepclient: %s: bad line: %w", url, uerr)
		}
		if ln.Index < 0 || ln.Index >= len(missing) {
			rotate()
			return clean, nil, fmt.Errorf("sweepclient: %s: point index %d outside batch of %d", url, ln.Index, len(missing))
		}
		oi := missing[ln.Index]
		if ln.Error != "" {
			lastErr[oi] = ln.Error
			continue
		}
		ln.Index = oi
		got[oi] = &ln
		clean++
	}
	if serr := sc.Err(); serr != nil {
		rotate()
		return clean, nil, fmt.Errorf("sweepclient: %s: stream cut: %w", url, serr)
	}
	if !sawAgg {
		rotate()
		return clean, nil, fmt.Errorf("sweepclient: %s: stream ended before the aggregate line", url)
	}
	return clean, aggLine, nil
}

// backoff computes the pre-retry delay; see backoffDelay.
func (c *Client) backoff(attempt int, cause error) time.Duration {
	return backoffDelay(c.base, c.max, attempt, cause)
}

// backoffDelay computes a pre-retry delay: exponential from base,
// capped at max, with jitter in [delay/2, delay) so simultaneous
// clients desynchronize. A Retry-After hint raises the floor but is
// itself capped at max — a misbehaving daemon advertising an hour
// cannot stall the sweep past the configured ceiling.
func backoffDelay(base, max time.Duration, attempt int, cause error) time.Duration {
	delay := base << uint(attempt)
	if delay > max || delay <= 0 {
		delay = max
	}
	delay = delay/2 + rand.N(delay/2+1)
	var ra *retryAfterError
	if errors.As(cause, &ra) {
		hint := ra.delay
		if hint > max {
			hint = max
		}
		if hint > delay {
			delay = hint
		}
	}
	return delay
}

// parseRetryAfter reads both RFC 7231 forms of Retry-After:
// delta-seconds and HTTP-date (the latter converted to a delay against
// the local clock; a date in the past means "now", i.e. no delay).
func parseRetryAfter(v string) time.Duration {
	v = strings.TrimSpace(v)
	if v == "" {
		return 0
	}
	if secs, err := strconv.Atoi(v); err == nil {
		if secs < 0 {
			return 0
		}
		return time.Duration(secs) * time.Second
	}
	if t, err := http.ParseTime(v); err == nil {
		if d := time.Until(t); d > 0 {
			return d
		}
	}
	return 0
}

// WriteNDJSON writes the reassembled sweep stream: one line per point
// in point order, then the aggregate. rawAgg (from RunPoints) is
// relayed verbatim when present; otherwise the aggregate is rebuilt
// from the lines. A rebuilt aggregate cannot see the daemons' cache
// and store provenance, so its hit counters are zero — the table and
// ok/error counts are exact either way.
func WriteNDJSON(w io.Writer, lines []service.SweepLine, rawAgg []byte) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for i := range lines {
		if err := enc.Encode(&lines[i]); err != nil {
			return err
		}
	}
	if rawAgg != nil {
		if _, err := bw.Write(rawAgg); err != nil {
			return err
		}
		return bw.Flush()
	}
	if err := enc.Encode(buildAggregate(lines)); err != nil {
		return err
	}
	return bw.Flush()
}

// buildAggregate reconstructs the aggregate line from settled lines.
func buildAggregate(lines []service.SweepLine) service.SweepAggregateLine {
	agg := service.SweepAggregate{
		Points: len(lines),
		Table:  make([]service.SweepTableRow, 0, len(lines)),
	}
	for _, ln := range lines {
		row := service.SweepTableRow{Index: ln.Index, Name: ln.Name, Hash: ln.Hash}
		if ln.Error != "" {
			row.Error = ln.Error
			agg.Errors++
		} else {
			agg.OK++
			var v service.ReportView
			if err := json.Unmarshal(ln.Report, &v); err == nil {
				row.Perf = v.Perf
				row.Committed = v.Stats.Committed
				row.Transitions = v.Stats.Transitions
				row.Rollbacks = v.Stats.Rollbacks
			}
		}
		agg.Table = append(agg.Table, row)
	}
	return service.SweepAggregateLine{Aggregate: agg}
}
