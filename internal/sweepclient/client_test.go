package sweepclient

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"coemu/internal/service"
	"coemu/internal/spec"
)

// testPoints builds n tiny distinct expanded points.
func testPoints(t *testing.T, n int) []*spec.Spec {
	t.Helper()
	points := make([]*spec.Spec, n)
	for i := range points {
		src := fmt.Sprintf(`{
		  "name": "pt-%d",
		  "design": {
		    "masters": [{"name": "dma", "domain": "acc",
		      "generator": {"kind": "stream", "window": {"lo": 0, "hi": "0x10000"},
		                    "write": true, "burst": "INCR8"}}],
		    "slaves": [{"name": "mem", "domain": "sim", "kind": "sram",
		      "region": {"lo": 0, "hi": "0x20000"}}]
		  },
		  "run": {"mode": "als", "cycles": %d}
		}`, i, 1000+100*i)
		sp, err := spec.Parse([]byte(src))
		if err != nil {
			t.Fatal(err)
		}
		points[i] = sp
	}
	return points
}

// decodeBatch pulls the submitted specs' names out of a request body.
func decodeBatch(t *testing.T, r *http.Request) []string {
	t.Helper()
	var batch struct {
		Specs []json.RawMessage `json:"specs"`
	}
	if err := json.NewDecoder(r.Body).Decode(&batch); err != nil {
		t.Errorf("bad batch body: %v", err)
		return nil
	}
	names := make([]string, len(batch.Specs))
	for i, raw := range batch.Specs {
		var s struct {
			Name string `json:"name"`
		}
		if err := json.Unmarshal(raw, &s); err != nil {
			t.Errorf("bad spec in batch: %v", err)
		}
		names[i] = s.Name
	}
	return names
}

// serveLines writes one clean NDJSON line per submitted spec plus an
// aggregate, the way a healthy daemon would.
func serveLines(t *testing.T, w http.ResponseWriter, names []string) {
	t.Helper()
	w.Header().Set("Content-Type", "application/x-ndjson")
	enc := json.NewEncoder(w)
	agg := service.NewSweepAggregator(len(names))
	for i, name := range names {
		pr := pointResult(t, i, name)
		if err := enc.Encode(agg.Add(pr)); err != nil {
			return
		}
	}
	if err := enc.Encode(agg.Line()); err != nil {
		return
	}
}

// pointResult fabricates a deterministic per-point result whose report
// bytes depend only on the point name.
func pointResult(t *testing.T, index int, name string) service.PointResult {
	t.Helper()
	res := &service.Result{JSON: []byte(fmt.Sprintf(`{"perf_cycles_per_sec":%d,"stats":{"committed":%d}}`,
		1000+len(name), 50000))}
	return service.PointResult{Index: index, Name: name, Hash: "h-" + name, Result: res}
}

func newClient(t *testing.T, urls ...string) *Client {
	t.Helper()
	c, err := New(Options{
		URLs:        urls,
		BaseBackoff: time.Millisecond,
		MaxBackoff:  2 * time.Millisecond,
		Logf:        t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestCleanRoundRelaysAggregateVerbatim(t *testing.T) {
	points := testPoints(t, 3)
	var stream bytes.Buffer
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		names := decodeBatch(t, r)
		serveLines(t, io2(w, &stream), names)
	}))
	defer srv.Close()

	lines, rawAgg, err := newClient(t, srv.URL).RunPoints(context.Background(), points)
	if err != nil {
		t.Fatal(err)
	}
	if len(lines) != 3 || rawAgg == nil {
		t.Fatalf("lines=%d rawAgg=%v, want 3 lines and a relayed aggregate", len(lines), rawAgg != nil)
	}
	for i, ln := range lines {
		if ln.Index != i || ln.Name != points[i].Name || ln.Error != "" {
			t.Fatalf("line %d = %+v", i, ln)
		}
	}

	// The reassembled stream must be byte-identical to what the daemon
	// sent: same encoder, same structs, verbatim aggregate.
	var out bytes.Buffer
	if err := WriteNDJSON(&out, lines, rawAgg); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out.Bytes(), stream.Bytes()) {
		t.Fatalf("reassembled stream differs:\ngot:  %s\nwant: %s", out.Bytes(), stream.Bytes())
	}
}

// io2 tees a ResponseWriter so tests can capture the exact stream.
func io2(w http.ResponseWriter, buf *bytes.Buffer) http.ResponseWriter {
	return &teeWriter{w: w, buf: buf}
}

type teeWriter struct {
	w   http.ResponseWriter
	buf *bytes.Buffer
}

func (t *teeWriter) Header() http.Header { return t.w.Header() }
func (t *teeWriter) WriteHeader(c int)   { t.w.WriteHeader(c) }
func (t *teeWriter) Write(p []byte) (int, error) {
	t.buf.Write(p)
	return t.w.Write(p)
}

func TestFailoverToSecondDaemon(t *testing.T) {
	points := testPoints(t, 2)
	dead := httptest.NewServer(http.HandlerFunc(func(http.ResponseWriter, *http.Request) {}))
	dead.Close() // connection refused from here on

	var hits atomic.Int32
	live := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		serveLines(t, w, decodeBatch(t, r))
	}))
	defer live.Close()

	lines, _, err := newClient(t, dead.URL, live.URL).RunPoints(context.Background(), points)
	if err != nil {
		t.Fatal(err)
	}
	if hits.Load() != 1 {
		t.Fatalf("live daemon hit %d times, want 1", hits.Load())
	}
	for i, ln := range lines {
		if ln.Error != "" {
			t.Fatalf("line %d failed after failover: %s", i, ln.Error)
		}
	}
}

func TestMidStreamDisconnectResumesMissingOnly(t *testing.T) {
	points := testPoints(t, 4)
	var round atomic.Int32
	var secondBatch atomic.Value
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		names := decodeBatch(t, r)
		if round.Add(1) == 1 {
			// Serve the first two lines, then die mid-stream.
			w.Header().Set("Content-Type", "application/x-ndjson")
			enc := json.NewEncoder(w)
			agg := service.NewSweepAggregator(len(names))
			for i := 0; i < 2; i++ {
				if err := enc.Encode(agg.Add(pointResult(t, i, names[i]))); err != nil {
					return
				}
			}
			if f, ok := w.(http.Flusher); ok {
				f.Flush()
			}
			panic(http.ErrAbortHandler)
		}
		secondBatch.Store(strings.Join(names, ","))
		serveLines(t, w, names)
	}))
	defer srv.Close()

	lines, rawAgg, err := newClient(t, srv.URL).RunPoints(context.Background(), points)
	if err != nil {
		t.Fatal(err)
	}
	if rawAgg != nil {
		t.Fatal("aggregate relayed despite a reassembled stream")
	}
	// Only the two points lost to the disconnect are re-submitted; the
	// two received lines are kept (store-aware resumption).
	if got := secondBatch.Load(); got != "pt-2,pt-3" {
		t.Fatalf("second round submitted %q, want pt-2,pt-3", got)
	}
	for i, ln := range lines {
		if ln.Index != i || ln.Name != points[i].Name || ln.Error != "" {
			t.Fatalf("line %d = %+v", i, ln)
		}
	}
}

func TestRetryAfterHonoredOn503(t *testing.T) {
	points := testPoints(t, 1)
	var round atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if round.Add(1) == 1 {
			w.Header().Set("Retry-After", "1")
			http.Error(w, `{"error":"queue full"}`, http.StatusServiceUnavailable)
			return
		}
		serveLines(t, w, decodeBatch(t, r))
	}))
	defer srv.Close()

	// The hint must fit under MaxBackoff to be honored in full, so this
	// client raises the ceiling above the 1s hint (newClient's 2ms
	// ceiling would clamp it — that behavior has its own test below).
	c, err := New(Options{URLs: []string{srv.URL}, BaseBackoff: time.Millisecond, MaxBackoff: 2 * time.Second, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	lines, _, err := c.RunPoints(context.Background(), points)
	if err != nil {
		t.Fatal(err)
	}
	if lines[0].Error != "" {
		t.Fatalf("line failed: %s", lines[0].Error)
	}
	// The 1s Retry-After must outrank the millisecond backoff.
	if waited := time.Since(start); waited < time.Second {
		t.Fatalf("retried after %v; Retry-After of 1s not honored", waited)
	}
}

func TestRetryAfterCappedAtMaxBackoff(t *testing.T) {
	points := testPoints(t, 1)
	var round atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if round.Add(1) == 1 {
			// A misbehaving daemon advertising an hour must not stall the
			// sweep past the configured backoff ceiling.
			w.Header().Set("Retry-After", "3600")
			http.Error(w, `{"error":"queue full"}`, http.StatusServiceUnavailable)
			return
		}
		serveLines(t, w, decodeBatch(t, r))
	}))
	defer srv.Close()

	start := time.Now()
	lines, _, err := newClient(t, srv.URL).RunPoints(context.Background(), points)
	if err != nil {
		t.Fatal(err)
	}
	if lines[0].Error != "" {
		t.Fatalf("line failed: %s", lines[0].Error)
	}
	if waited := time.Since(start); waited > 10*time.Second {
		t.Fatalf("retried after %v; Retry-After of 1h not capped at the 2ms MaxBackoff", waited)
	}
}

func TestRetryAfterHTTPDateHonored(t *testing.T) {
	points := testPoints(t, 1)
	var round atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if round.Add(1) == 1 {
			// RFC 7231's other Retry-After form: an absolute HTTP-date.
			w.Header().Set("Retry-After", time.Now().Add(time.Second).UTC().Format(http.TimeFormat))
			http.Error(w, `{"error":"queue full"}`, http.StatusServiceUnavailable)
			return
		}
		serveLines(t, w, decodeBatch(t, r))
	}))
	defer srv.Close()

	c, err := New(Options{URLs: []string{srv.URL}, BaseBackoff: time.Millisecond, MaxBackoff: 2 * time.Second, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	lines, _, err := c.RunPoints(context.Background(), points)
	if err != nil {
		t.Fatal(err)
	}
	if lines[0].Error != "" {
		t.Fatalf("line failed: %s", lines[0].Error)
	}
	// http.TimeFormat has second granularity, so the parsed delay is
	// anywhere in (0s, 1s]; it must at least outrank the ms backoff.
	if waited := time.Since(start); waited < 50*time.Millisecond {
		t.Fatalf("retried after %v; HTTP-date Retry-After not honored", waited)
	}
}

func TestParseRetryAfterForms(t *testing.T) {
	if d := parseRetryAfter("7"); d != 7*time.Second {
		t.Fatalf("delta-seconds: got %v, want 7s", d)
	}
	if d := parseRetryAfter("-3"); d != 0 {
		t.Fatalf("negative delta: got %v, want 0", d)
	}
	future := time.Now().Add(30 * time.Second).UTC().Format(http.TimeFormat)
	if d := parseRetryAfter(future); d <= 25*time.Second || d > 30*time.Second {
		t.Fatalf("HTTP-date +30s: got %v, want ~30s", d)
	}
	past := time.Now().Add(-time.Hour).UTC().Format(http.TimeFormat)
	if d := parseRetryAfter(past); d != 0 {
		t.Fatalf("past HTTP-date: got %v, want 0", d)
	}
	if d := parseRetryAfter("not a date"); d != 0 {
		t.Fatalf("garbage: got %v, want 0", d)
	}
}

func TestBadRequestIsPermanent(t *testing.T) {
	points := testPoints(t, 1)
	var hits atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		http.Error(w, `{"error":"bad spec"}`, http.StatusBadRequest)
	}))
	defer srv.Close()

	_, _, err := newClient(t, srv.URL).RunPoints(context.Background(), points)
	if err == nil || !strings.Contains(err.Error(), "bad spec") {
		t.Fatalf("err = %v, want the daemon's 400", err)
	}
	if hits.Load() != 1 {
		t.Fatalf("daemon hit %d times for a permanent rejection, want 1", hits.Load())
	}
}

func TestPointErrorRetriesThenSucceeds(t *testing.T) {
	points := testPoints(t, 2)
	var round atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		names := decodeBatch(t, r)
		w.Header().Set("Content-Type", "application/x-ndjson")
		enc := json.NewEncoder(w)
		agg := service.NewSweepAggregator(len(names))
		for i, name := range names {
			pr := pointResult(t, i, name)
			if round.Add(0) == 0 && name == "pt-1" {
				// First round: fail the point like an injected panic.
				pr = service.PointResult{Index: i, Name: name, Hash: "h-" + name,
					Err: errors.New("service: worker panic")}
			}
			enc.Encode(agg.Add(pr))
		}
		enc.Encode(agg.Line())
		round.Add(1)
	}))
	defer srv.Close()

	lines, rawAgg, err := newClient(t, srv.URL).RunPoints(context.Background(), points)
	if err != nil {
		t.Fatal(err)
	}
	if rawAgg != nil {
		t.Fatal("aggregate relayed despite a retried point")
	}
	for i, ln := range lines {
		if ln.Error != "" {
			t.Fatalf("line %d still failed: %s", i, ln.Error)
		}
		if ln.Index != i || ln.Name != points[i].Name {
			t.Fatalf("line %d = %+v", i, ln)
		}
	}
	if round.Load() != 2 {
		t.Fatalf("daemon served %d rounds, want 2", round.Load())
	}
}

func TestExhaustedBudgetSettlesErrorLines(t *testing.T) {
	points := testPoints(t, 2)
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		names := decodeBatch(t, r)
		w.Header().Set("Content-Type", "application/x-ndjson")
		enc := json.NewEncoder(w)
		agg := service.NewSweepAggregator(len(names))
		for i, name := range names {
			pr := pointResult(t, i, name)
			if name == "pt-0" {
				pr = service.PointResult{Index: i, Name: name, Err: errors.New("always broken")}
			}
			enc.Encode(agg.Add(pr))
		}
		enc.Encode(agg.Line())
	}))
	defer srv.Close()

	c, err := New(Options{URLs: []string{srv.URL}, Retries: 2,
		BaseBackoff: time.Millisecond, MaxBackoff: 2 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	lines, _, err := c.RunPoints(context.Background(), points)
	if err != nil {
		t.Fatal(err)
	}
	if lines[0].Error != "always broken" {
		t.Fatalf("line 0 error = %q, want the daemon's last error", lines[0].Error)
	}
	if lines[1].Error != "" {
		t.Fatalf("healthy point failed: %s", lines[1].Error)
	}

	// The rebuilt aggregate counts the surviving error.
	var out bytes.Buffer
	if err := WriteNDJSON(&out, lines, nil); err != nil {
		t.Fatal(err)
	}
	last := out.Bytes()[bytes.LastIndexByte(bytes.TrimSpace(out.Bytes()), '\n')+1:]
	var aggLine service.SweepAggregateLine
	if err := json.Unmarshal(last, &aggLine); err != nil {
		t.Fatal(err)
	}
	if aggLine.Aggregate.OK != 1 || aggLine.Aggregate.Errors != 1 || aggLine.Aggregate.Points != 2 {
		t.Fatalf("rebuilt aggregate = %+v", aggLine.Aggregate)
	}
}

func TestNewRejectsEmptyURLs(t *testing.T) {
	if _, err := New(Options{}); err == nil {
		t.Fatal("New accepted an empty URL list")
	}
	if _, err := New(Options{URLs: []string{" "}}); err == nil {
		t.Fatal("New accepted a blank URL")
	}
}
