package sweepclient

// fleet.go — sharded fleet sweeps. Where Client treats every daemon as
// a full replica and fails over between them, Fleet shards one sweep's
// expanded points ACROSS the daemons by consistent hash and runs the
// shards in parallel, surviving daemon death, daemon recovery, and
// client death mid-sweep:
//
//   - Sharding: each round builds a bounded-load consistent-hash ring
//     over the currently healthy membership (from the prober) and
//     assigns every unfinished point by its canonical spec hash.
//     Saturated daemons get half the load cap.
//   - Failover: a shard whose daemon dies keeps the lines it streamed
//     before the cut; the prober evicts the daemon and the next round's
//     ring rebalances only the unfinished points onto survivors.
//   - Incremental resubmission: after any failure, and for every
//     journaled point on resume, the fleet first probes the daemons'
//     store via GET /v1/results/{hash} and splices the canonical report
//     bytes directly — a point whose result the shared store already
//     holds is never re-submitted, so it can never re-run the engine.
//   - Crash safety: with a Journal attached, every completed point hash
//     is fsync'd before the fleet moves on, so a killed client resumes
//     exactly where it stopped (cmd/sweep -resume).
//
// Bit-identity is preserved: lines carry the daemons' canonical report
// bytes verbatim (whether streamed, store-probed, or journal-restored),
// so the reassembled NDJSON is byte-identical to a local -grid run.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"strings"
	"sync"
	"time"

	"coemu/internal/service"
	"coemu/internal/spec"
)

// FleetOptions configures a Fleet.
type FleetOptions struct {
	// URLs are the coemud base URLs forming the fleet membership. At
	// least one is required; one URL degenerates to Client behavior.
	URLs []string
	// Retries bounds how many failed rounds the fleet rides out before
	// settling unfinished points with their last error; 0 means
	// DefaultRetries, negative disables retries.
	Retries int
	// BaseBackoff and MaxBackoff shape the exponential backoff between
	// rounds; zero values take the defaults.
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
	// HTTPClient overrides the sweep/lookup transport.
	HTTPClient *http.Client
	// Replicas and LoadFactor tune the ring (zero takes
	// DefaultRingReplicas / DefaultLoadFactor).
	Replicas   int
	LoadFactor float64
	// ProbeInterval and FailThreshold tune the health prober (zero takes
	// DefaultProbeInterval / DefaultFailThreshold).
	ProbeInterval time.Duration
	FailThreshold int
	// Journal, when set, durably records completed point hashes; points
	// it already holds are restored from the fleet store, not re-run.
	Journal *Journal
	// Logf, when set, receives one line per membership/rebalance/retry
	// decision.
	Logf func(format string, args ...any)
}

// Fleet shards sweeps across a health-checked set of coemud daemons.
type Fleet struct {
	retries  int
	base     time.Duration
	max      time.Duration
	http     *http.Client
	replicas int
	factor   float64
	journal  *Journal
	logf     func(format string, args ...any)
	prober   *prober
}

// NewFleet builds a fleet and starts its health prober (stop it with
// Close).
func NewFleet(opts FleetOptions) (*Fleet, error) {
	if len(opts.URLs) == 0 {
		return nil, errors.New("sweepclient: no daemon URLs")
	}
	urls := make([]string, len(opts.URLs))
	for i, u := range opts.URLs {
		u = strings.TrimRight(strings.TrimSpace(u), "/")
		if u == "" {
			return nil, fmt.Errorf("sweepclient: empty daemon URL at position %d", i)
		}
		urls[i] = u
	}
	f := &Fleet{
		retries:  opts.Retries,
		base:     opts.BaseBackoff,
		max:      opts.MaxBackoff,
		http:     opts.HTTPClient,
		replicas: opts.Replicas,
		factor:   opts.LoadFactor,
		journal:  opts.Journal,
		logf:     opts.Logf,
	}
	if f.retries == 0 {
		f.retries = DefaultRetries
	} else if f.retries < 0 {
		f.retries = 0
	}
	if f.base <= 0 {
		f.base = DefaultBaseBackoff
	}
	if f.max <= 0 {
		f.max = DefaultMaxBackoff
	}
	if f.http == nil {
		f.http = &http.Client{Timeout: 30 * time.Minute}
	}
	if f.logf == nil {
		f.logf = func(string, ...any) {}
	}
	// Probes get their own short-deadline client: a healthz poll that
	// hangs is itself a health signal, and it must not inherit the
	// sweep transport's streaming-scale timeout.
	probeClient := &http.Client{Timeout: 5 * time.Second}
	f.prober = newProber(urls, probeClient, opts.ProbeInterval, opts.FailThreshold, f.logf)
	return f, nil
}

// Close stops the health prober. The journal (if any) is the caller's
// to close.
func (f *Fleet) Close() { f.prober.Close() }

// Health reports every member's current health state, in the order the
// URLs were given.
func (f *Fleet) Health() []MemberHealth { return f.prober.snapshot() }

// RunPoints runs every expanded point to a settled SweepLine, sharded
// across the fleet. Index/Name/Report match the local -grid stream so
// the reassembled NDJSON is byte-identical line for line. rawAgg
// carries a daemon's own aggregate line verbatim only when a single
// shard delivered the whole sweep cleanly on the first round (the
// single-daemon -remote case); it is nil whenever the stream was
// reassembled across shards or rounds.
//
// The returned error is non-nil only for permanent failures: a 4xx
// rejection or context cancellation. Per-point errors that survive the
// retry budget are reported in their lines' Error fields.
func (f *Fleet) RunPoints(ctx context.Context, points []*spec.Spec) (lines []service.SweepLine, rawAgg []byte, err error) {
	if len(points) == 0 {
		return nil, nil, errors.New("sweepclient: sweep has no points")
	}
	hashes := make([]string, len(points))
	for i, p := range points {
		h, herr := p.CanonicalHash()
		if herr != nil {
			return nil, nil, &permanentError{fmt.Errorf("sweepclient: hash point %d: %w", i, herr)}
		}
		hashes[i] = h
	}

	got := make([]*service.SweepLine, len(points))
	lastErr := make(map[int]string)

	// Resume: points the journal marks completed are restored from the
	// fleet store, never re-submitted. A journaled point the store no
	// longer holds (aged out, store lost) simply re-runs — the journal
	// is an optimization witness, not the source of truth.
	restored := 0
	if f.journal != nil && f.journal.Len() > 0 {
		for i := range points {
			if !f.journal.Has(hashes[i]) {
				continue
			}
			if body, ok := f.lookup(ctx, hashes[i]); ok {
				f.fill(got, points, hashes, i, body)
				restored++
			}
		}
		f.logf("sweepclient: fleet resume: restored %d of %d journaled point(s) from the store", restored, f.journal.Len())
	}

	attempt := 0
	for {
		if cerr := ctx.Err(); cerr != nil {
			return nil, nil, cerr
		}
		missing := missingIndexes(got)
		if len(missing) == 0 {
			break
		}
		// After any failure, a "missing" point may in fact be complete: a
		// shard can die after the store write-through but before its line
		// reached us. Probe the store first; only true gaps re-submit.
		if attempt > 0 {
			for _, oi := range missing {
				if body, ok := f.lookup(ctx, hashes[oi]); ok {
					f.fill(got, points, hashes, oi, body)
				}
			}
			if missing = missingIndexes(got); len(missing) == 0 {
				break
			}
		}

		members := f.prober.healthy()
		roundAgg, roundErr := f.runRound(ctx, points, hashes, missing, members, got, lastErr)
		if permanent(roundErr) {
			return nil, nil, roundErr
		}
		// Journal every completion before deciding anything else — a kill
		// from here on resumes past these points.
		if f.journal != nil {
			for i := range got {
				if got[i] == nil {
					continue
				}
				if jerr := f.journal.Record(hashes[i]); jerr != nil {
					f.logf("sweepclient: journal: %v", jerr)
				}
			}
		}
		missingNow := missingIndexes(got)
		if len(missingNow) == 0 {
			if attempt == 0 && restored == 0 && roundErr == nil {
				rawAgg = roundAgg
			}
			break
		}
		if roundErr == nil {
			roundErr = fmt.Errorf("%d point(s) failed", len(missingNow))
		}
		if attempt >= f.retries {
			f.logf("sweepclient: fleet giving up after %d round(s): %v", attempt+1, roundErr)
			break
		}
		delay := backoffDelay(f.base, f.max, attempt, roundErr)
		f.logf("sweepclient: fleet round %d/%d: %d point(s) unfinished (%v); rebalancing in %v",
			attempt+1, f.retries+1, len(missingNow), roundErr, delay)
		select {
		case <-ctx.Done():
			return nil, nil, ctx.Err()
		case <-time.After(delay):
		}
		// Refresh membership synchronously so the next ring reflects
		// evictions/recoveries even with a long probe interval.
		f.prober.probeAll()
		attempt++
	}

	return settleLines(points, got, lastErr), rawAgg, nil
}

// runRound shards the missing points across the healthy members and
// runs every shard in parallel, folding clean lines into got and error
// messages into lastErr. It returns the daemon's verbatim aggregate
// line when the round ran as exactly one clean shard (nil otherwise)
// and the round's representative error: permanent if any shard was
// rejected permanently, transient if any shard or point failed, nil on
// a fully clean round.
func (f *Fleet) runRound(ctx context.Context, points []*spec.Spec, hashes []string, missing []int, members []MemberHealth, got []*service.SweepLine, lastErr map[int]string) ([]byte, error) {
	if len(members) == 0 {
		f.prober.probeAll()
		return nil, errors.New("sweepclient: no healthy daemons in the fleet")
	}
	urls := make([]string, len(members))
	for i, m := range members {
		urls[i] = m.URL
	}
	ring, rerr := NewRing(urls, f.replicas, f.factor)
	if rerr != nil {
		return nil, &permanentError{rerr}
	}
	missingHashes := make([]string, len(missing))
	for bi, oi := range missing {
		missingHashes[bi] = hashes[oi]
	}
	assign := ring.Assign(missingHashes, f.capsFor(ring, members, len(missing)))
	if len(assign) > 1 {
		f.logf("sweepclient: fleet sharding %d point(s) across %d daemon(s)", len(missing), len(assign))
	}

	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
		permErr  error
		agg      []byte
	)
	single := len(assign) == 1
	for url, bidx := range assign {
		oidx := make([]int, len(bidx))
		for i, bi := range bidx {
			oidx[i] = missing[bi]
		}
		wg.Add(1)
		go func(url string, oidx []int) {
			defer wg.Done()
			// Each shard is a one-URL Client attempt: same POST batch, same
			// NDJSON scan, same index remapping. Shards write disjoint got
			// slots, so only the bookkeeping below needs the lock.
			shard := &Client{
				urls: []string{url},
				base: f.base, max: f.max,
				http: f.http,
				logf: func(string, ...any) {},
			}
			shardErr := make(map[int]string)
			_, shardAgg, aerr := shard.attempt(ctx, points, oidx, got, shardErr)
			mu.Lock()
			defer mu.Unlock()
			for oi, msg := range shardErr {
				lastErr[oi] = msg
			}
			switch {
			case aerr == nil:
				f.prober.reportSuccess(url)
				if single {
					agg = shardAgg
				}
				if len(shardErr) > 0 && firstErr == nil {
					firstErr = fmt.Errorf("sweepclient: %s: %d point(s) failed", url, len(shardErr))
				}
			case permanent(aerr):
				permErr = aerr
			default:
				f.prober.reportFailure(url, aerr)
				if firstErr == nil {
					firstErr = aerr
				}
			}
		}(url, oidx)
	}
	wg.Wait()
	if permErr != nil {
		return nil, permErr
	}
	return agg, firstErr
}

// capsFor computes per-member load caps for Assign, aligned with
// ring.Members(): the uniform bounded-load cap, halved for members
// whose last probe reported queue saturation.
func (f *Fleet) capsFor(ring *Ring, members []MemberHealth, n int) []int {
	saturated := make(map[string]bool, len(members))
	any := false
	for _, m := range members {
		if m.Saturated {
			saturated[m.URL] = true
			any = true
		}
	}
	if !any {
		return nil
	}
	factor := f.factor
	if factor == 0 {
		factor = DefaultLoadFactor
	}
	sorted := ring.Members()
	base := int(math.Ceil(factor * float64(n) / float64(len(sorted))))
	if base < 1 {
		base = 1
	}
	caps := make([]int, len(sorted))
	for i, u := range sorted {
		caps[i] = -1
		if saturated[u] {
			caps[i] = base / 2
			if caps[i] < 1 {
				caps[i] = 1
			}
		}
	}
	return caps
}

// lookup probes the fleet store for a completed point's canonical
// report bytes via GET /v1/results/{hash}, lightly-loaded members
// first. A 404 is a healthy "not here" and moves on to the next member
// (a partitioned fleet may not share one store); transport errors count
// against the member's health.
func (f *Fleet) lookup(ctx context.Context, hash string) (json.RawMessage, bool) {
	for _, m := range f.prober.healthy() {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, m.URL+"/v1/results/"+hash, nil)
		if err != nil {
			return nil, false
		}
		resp, err := f.http.Do(req)
		if err != nil {
			f.prober.reportFailure(m.URL, err)
			continue
		}
		body, rerr := io.ReadAll(io.LimitReader(resp.Body, 1<<24))
		resp.Body.Close()
		switch {
		case resp.StatusCode == http.StatusOK && rerr == nil && len(body) > 0:
			f.prober.reportSuccess(m.URL)
			return json.RawMessage(body), true
		case resp.StatusCode == http.StatusOK || resp.StatusCode == http.StatusNotFound:
			f.prober.reportSuccess(m.URL)
		}
	}
	return nil, false
}

// fill completes a point from store-held canonical report bytes,
// journaling it like any other completion. The spliced line is shaped
// exactly like a streamed one, so bit-identity holds.
func (f *Fleet) fill(got []*service.SweepLine, points []*spec.Spec, hashes []string, i int, body json.RawMessage) {
	got[i] = &service.SweepLine{Index: i, Name: points[i].Name, Hash: hashes[i], Report: body}
	if f.journal != nil {
		if err := f.journal.Record(hashes[i]); err != nil {
			f.logf("sweepclient: journal: %v", err)
		}
	}
}
