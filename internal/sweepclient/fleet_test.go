package sweepclient

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"coemu/internal/service"
	"coemu/internal/spec"
)

// fleetStore is the stub daemons' shared content-addressed store:
// canonical hash → report bytes, with engine-run accounting so tests
// can prove a store-held point never re-ran.
type fleetStore struct {
	mu         sync.Mutex
	data       map[string][]byte
	engineRuns map[string]int
}

func newFleetStore() *fleetStore {
	return &fleetStore{data: make(map[string][]byte), engineRuns: make(map[string]int)}
}

func (fs *fleetStore) get(hash string) ([]byte, bool) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	data, ok := fs.data[hash]
	return data, ok
}

// run serves hash from the store, or "runs the engine" (records the
// run and stores the report) on a miss — the real daemon's dedup.
func (fs *fleetStore) run(hash string, report []byte) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if _, ok := fs.data[hash]; ok {
		return
	}
	fs.engineRuns[hash]++
	fs.data[hash] = report
}

func (fs *fleetStore) totalRuns() int {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	n := 0
	for _, c := range fs.engineRuns {
		n += c
	}
	return n
}

// reportFor fabricates the deterministic canonical report bytes for a
// point name, so every stub daemon produces identical results.
func reportFor(name string) []byte {
	return []byte(fmt.Sprintf(`{"point":%q,"perf_cycles_per_sec":%d}`, name, 100+len(name)))
}

// stubDaemon speaks just enough of coemud's wire protocol for the
// fleet: /v1/healthz, /v1/sweep, /v1/results/{hash}. Setting down
// makes it drop every connection (a dead process); dieAfter > 0 cuts
// the next sweep stream after that many lines and goes down.
type stubDaemon struct {
	t        *testing.T
	store    *fleetStore
	down     atomic.Bool
	mu       sync.Mutex
	posts    int
	received map[string]int // point name → times received in a batch
	dieAfter int
	srv      *httptest.Server
}

func startStubDaemon(t *testing.T, fs *fleetStore) *stubDaemon {
	t.Helper()
	d := &stubDaemon{t: t, store: fs, received: make(map[string]int)}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/healthz", func(w http.ResponseWriter, r *http.Request) {
		if d.down.Load() {
			d.drop(w)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprint(w, `{"ok":true,"queue":0,"queue_capacity":8,"saturated":false,"store":{"entries":0,"bytes":0,"quarantined":0}}`)
	})
	mux.HandleFunc("GET /v1/results/{hash}", func(w http.ResponseWriter, r *http.Request) {
		if d.down.Load() {
			d.drop(w)
			return
		}
		if data, ok := fs.get(r.PathValue("hash")); ok {
			w.Header().Set("Content-Type", "application/json")
			_, _ = w.Write(data)
			return
		}
		http.Error(w, `{"error":"no completed result for that hash"}`, http.StatusNotFound)
	})
	mux.HandleFunc("POST /v1/sweep", func(w http.ResponseWriter, r *http.Request) {
		if d.down.Load() {
			d.drop(w)
			return
		}
		d.mu.Lock()
		d.posts++
		cut := d.dieAfter
		d.dieAfter = 0
		d.mu.Unlock()
		var batch struct {
			Specs []json.RawMessage `json:"specs"`
		}
		if err := json.NewDecoder(r.Body).Decode(&batch); err != nil {
			d.t.Errorf("stub daemon: bad batch: %v", err)
			return
		}
		agg := service.NewSweepAggregator(len(batch.Specs))
		enc := json.NewEncoder(w)
		for i, raw := range batch.Specs {
			sp, err := spec.Parse(raw)
			if err != nil {
				d.t.Errorf("stub daemon: bad spec in batch: %v", err)
				return
			}
			hash, err := sp.CanonicalHash()
			if err != nil {
				d.t.Errorf("stub daemon: hash: %v", err)
				return
			}
			d.mu.Lock()
			d.received[sp.Name]++
			d.mu.Unlock()
			rep := reportFor(sp.Name)
			fs.run(hash, rep)
			pr := service.PointResult{Index: i, Name: sp.Name, Hash: hash, Result: &service.Result{JSON: rep}}
			if err := enc.Encode(agg.Add(pr)); err != nil {
				return
			}
			if cut > 0 && i+1 == cut {
				// Die mid-stream: flush what was served, cut the
				// connection, and answer nothing ever again.
				if fl, ok := w.(http.Flusher); ok {
					fl.Flush()
				}
				d.down.Store(true)
				d.drop(w)
				return
			}
		}
		_ = enc.Encode(agg.Line())
	})
	d.srv = httptest.NewServer(mux)
	t.Cleanup(d.srv.Close)
	return d
}

// drop severs the client's connection without an HTTP response, the
// way a SIGKILLed daemon would.
func (d *stubDaemon) drop(w http.ResponseWriter) {
	if hj, ok := w.(http.Hijacker); ok {
		if conn, _, err := hj.Hijack(); err == nil {
			conn.Close()
			return
		}
	}
	panic(http.ErrAbortHandler)
}

func (d *stubDaemon) sweepPosts() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.posts
}

func (d *stubDaemon) batchPoints() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	n := 0
	for _, c := range d.received {
		n += c
	}
	return n
}

func newTestFleet(t *testing.T, journal *Journal, urls ...string) *Fleet {
	t.Helper()
	f, err := NewFleet(FleetOptions{
		URLs:          urls,
		Retries:       8,
		BaseBackoff:   time.Millisecond,
		MaxBackoff:    5 * time.Millisecond,
		ProbeInterval: 10 * time.Millisecond,
		FailThreshold: 1,
		Journal:       journal,
		Logf:          t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(f.Close)
	return f
}

// requireClean asserts every line settled cleanly, in point order.
func requireClean(t *testing.T, points []*spec.Spec, lines []service.SweepLine) {
	t.Helper()
	if len(lines) != len(points) {
		t.Fatalf("got %d lines for %d points", len(lines), len(points))
	}
	for i, ln := range lines {
		if ln.Error != "" {
			t.Fatalf("point %d (%s) failed: %s", i, points[i].Name, ln.Error)
		}
		if ln.Index != i || ln.Name != points[i].Name {
			t.Fatalf("line %d is (index %d, %s), want (index %d, %s)", i, ln.Index, ln.Name, i, points[i].Name)
		}
		if string(ln.Report) != string(reportFor(points[i].Name)) {
			t.Fatalf("point %d report bytes differ from the canonical report", i)
		}
	}
}

func TestFleetShardsAcrossDaemons(t *testing.T) {
	fs := newFleetStore()
	daemons := []*stubDaemon{startStubDaemon(t, fs), startStubDaemon(t, fs), startStubDaemon(t, fs)}
	urls := []string{daemons[0].srv.URL, daemons[1].srv.URL, daemons[2].srv.URL}
	points := testPoints(t, 30)

	fleet := newTestFleet(t, nil, urls...)
	lines, rawAgg, err := fleet.RunPoints(context.Background(), points)
	if err != nil {
		t.Fatal(err)
	}
	requireClean(t, points, lines)
	if rawAgg != nil {
		t.Fatal("multi-shard sweep relayed a single daemon's aggregate")
	}

	// Every daemon carries a shard, no daemon exceeds the bounded-load
	// cap, and every point was submitted exactly once in total.
	cap := 13 // ceil(1.25 * 30 / 3)
	total := 0
	for i, d := range daemons {
		n := d.batchPoints()
		if n == 0 {
			t.Fatalf("daemon %d received no points; sweep was not sharded", i)
		}
		if n > cap {
			t.Fatalf("daemon %d received %d points, above the bounded-load cap %d", i, n, cap)
		}
		total += n
	}
	if total != len(points) {
		t.Fatalf("daemons received %d submissions for %d points; sharding duplicated or dropped work", total, len(points))
	}
	if runs := fs.totalRuns(); runs != len(points) {
		t.Fatalf("%d engine runs for %d points", runs, len(points))
	}
}

func TestFleetSingleDaemonRelaysAggregateVerbatim(t *testing.T) {
	fs := newFleetStore()
	d := startStubDaemon(t, fs)
	points := testPoints(t, 4)

	fleet := newTestFleet(t, nil, d.srv.URL)
	lines, rawAgg, err := fleet.RunPoints(context.Background(), points)
	if err != nil {
		t.Fatal(err)
	}
	requireClean(t, points, lines)
	if rawAgg == nil {
		t.Fatal("single clean shard must relay the daemon's aggregate verbatim")
	}
	var aggLine service.SweepAggregateLine
	if err := json.Unmarshal(rawAgg, &aggLine); err != nil {
		t.Fatalf("relayed aggregate is not an aggregate line: %v", err)
	}
	if aggLine.Aggregate.Points != 4 || aggLine.Aggregate.OK != 4 {
		t.Fatalf("relayed aggregate counts %+v, want 4/4", aggLine.Aggregate)
	}
}

func TestFleetConcurrentShardDeathNoDoubleCount(t *testing.T) {
	fs := newFleetStore()
	daemons := []*stubDaemon{startStubDaemon(t, fs), startStubDaemon(t, fs), startStubDaemon(t, fs)}
	urls := []string{daemons[0].srv.URL, daemons[1].srv.URL, daemons[2].srv.URL}
	points := testPoints(t, 30)

	// Two of the three daemons die mid-stream, concurrently, each after
	// serving one line of its shard. Their unfinished points must
	// rebalance onto the survivor; their served points must not re-run.
	daemons[0].dieAfter = 1
	daemons[1].dieAfter = 1

	fleet := newTestFleet(t, nil, urls...)
	lines, _, err := fleet.RunPoints(context.Background(), points)
	if err != nil {
		t.Fatal(err)
	}
	requireClean(t, points, lines)

	// No point is double-counted in the aggregate: exactly one row per
	// point, each index once, totals exact.
	agg := buildAggregate(lines)
	if agg.Aggregate.Points != 30 || agg.Aggregate.OK != 30 || agg.Aggregate.Errors != 0 {
		t.Fatalf("aggregate counts %+v, want 30 points / 30 ok / 0 errors", agg.Aggregate)
	}
	seen := make(map[int]bool)
	for _, row := range agg.Aggregate.Table {
		if seen[row.Index] {
			t.Fatalf("point %d double-counted in the aggregate", row.Index)
		}
		seen[row.Index] = true
	}
	if len(seen) != 30 {
		t.Fatalf("aggregate table has %d rows, want 30", len(seen))
	}

	// No engine run was duplicated anywhere in the fleet: a point either
	// ran on its original shard before the cut (and survivors answered
	// from the shared store) or ran exactly once on a survivor.
	fs.mu.Lock()
	defer fs.mu.Unlock()
	for hash, runs := range fs.engineRuns {
		if runs != 1 {
			t.Fatalf("hash %s ran the engine %d times, want exactly 1", hash[:8], runs)
		}
	}
	if len(fs.engineRuns) != 30 {
		t.Fatalf("%d hashes ran for 30 points", len(fs.engineRuns))
	}
}

func TestFleetEvictionAndReadmission(t *testing.T) {
	fs := newFleetStore()
	d0, d1 := startStubDaemon(t, fs), startStubDaemon(t, fs)
	all := testPoints(t, 40)
	first, second := all[:20], all[20:]

	// d0 is dead before the fleet starts: the synchronous initial probe
	// round evicts it and the whole first sweep lands on d1.
	d0.down.Store(true)
	fleet := newTestFleet(t, nil, d0.srv.URL, d1.srv.URL)
	lines, _, err := fleet.RunPoints(context.Background(), first)
	if err != nil {
		t.Fatal(err)
	}
	requireClean(t, first, lines)
	if d0.sweepPosts() != 0 {
		t.Fatal("evicted daemon still received sweep submissions")
	}

	// d0 recovers; the prober must re-admit it without intervention.
	d0.down.Store(false)
	deadline := time.Now().Add(5 * time.Second)
	for {
		h := fleet.Health()
		if h[0].Healthy && h[1].Healthy {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("recovered daemon not re-admitted; health %+v", h)
		}
		time.Sleep(5 * time.Millisecond)
	}

	// A fresh sweep shards across both again...
	lines, _, err = fleet.RunPoints(context.Background(), second)
	if err != nil {
		t.Fatal(err)
	}
	requireClean(t, second, lines)
	if d0.sweepPosts() == 0 {
		t.Fatal("re-admitted daemon received no share of the next sweep")
	}

	// ...and re-running the first batch is pure store traffic: the
	// re-admitted daemon serves store-held hashes without engine runs.
	runsBefore := fs.totalRuns()
	lines, _, err = fleet.RunPoints(context.Background(), first)
	if err != nil {
		t.Fatal(err)
	}
	requireClean(t, first, lines)
	if runs := fs.totalRuns(); runs != runsBefore {
		t.Fatalf("re-running store-held points cost %d extra engine runs", runs-runsBefore)
	}
}

func TestFleetJournalResumeSkipsSubmission(t *testing.T) {
	fs := newFleetStore()
	d := startStubDaemon(t, fs)
	points := testPoints(t, 6)
	path := filepath.Join(t.TempDir(), "resume.ndjson")

	j1, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	fleet1 := newTestFleet(t, j1, d.srv.URL)
	firstLines, _, err := fleet1.RunPoints(context.Background(), points)
	if err != nil {
		t.Fatal(err)
	}
	requireClean(t, points, firstLines)
	fleet1.Close()
	if err := j1.Close(); err != nil {
		t.Fatal(err)
	}
	if j1.Len() != len(points) {
		t.Fatalf("journal holds %d hashes after a %d-point sweep", j1.Len(), len(points))
	}

	// A "restarted client": new fleet, same journal. The whole sweep
	// must restore from the store — zero sweep submissions, zero new
	// engine runs, byte-identical lines.
	postsBefore, runsBefore := d.sweepPosts(), fs.totalRuns()
	j2, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	fleet2 := newTestFleet(t, j2, d.srv.URL)
	resumedLines, rawAgg, err := fleet2.RunPoints(context.Background(), points)
	if err != nil {
		t.Fatal(err)
	}
	requireClean(t, points, resumedLines)
	if d.sweepPosts() != postsBefore {
		t.Fatalf("resume re-submitted a sweep (%d posts, had %d)", d.sweepPosts(), postsBefore)
	}
	if fs.totalRuns() != runsBefore {
		t.Fatal("resume caused engine runs for journaled points")
	}
	if rawAgg != nil {
		t.Fatal("journal-restored sweep relayed an aggregate it never received")
	}
	for i := range firstLines {
		a, _ := json.Marshal(firstLines[i])
		b, _ := json.Marshal(resumedLines[i])
		if string(a) != string(b) {
			t.Fatalf("resumed line %d differs:\n%s\n%s", i, a, b)
		}
	}
}
