package sweepclient

// journal.go — the crash-safe client resume journal. A fleet sweep can
// outlive its client: the daemons' shared store holds every completed
// point, but a freshly restarted client has no idea which points those
// are without re-asking for all of them. The journal closes that gap on
// the client side: one append-only NDJSON record per completed point
// hash, fsync'd before the completion is considered durable, so a
// killed client resumes exactly where it stopped (cmd/sweep -resume).
// Journaled points are restored from the daemons' store via
// /v1/results/{hash} instead of being re-submitted.
//
// Crash safety: records are appended with an fsync per completion, so a
// crash loses at most the record being written. A torn final record —
// the half-line a kill mid-append leaves — is detected on open and
// truncated away, and its point simply re-runs; the journal never
// invents a completion.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"sync"
)

// Journal is an append-only, fsync'd record of completed point hashes.
// Safe for concurrent use.
type Journal struct {
	mu   sync.Mutex
	f    *os.File
	path string
	seen map[string]struct{}
}

// journalRecord is one NDJSON line.
type journalRecord struct {
	Hash string `json:"hash"`
}

// OpenJournal opens (creating if needed) a journal file and loads the
// hashes it already holds. A torn trailing record from a crashed
// writer is truncated away; any other malformed content is an error —
// the file is probably not a journal, and appending to it would
// destroy whatever it is.
func OpenJournal(path string) (*Journal, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("sweepclient: journal: %w", err)
	}
	j := &Journal{f: f, path: path, seen: make(map[string]struct{})}
	good, err := j.load()
	if err != nil {
		f.Close()
		return nil, err
	}
	// Drop the torn tail (if any) and position appends after the intact
	// prefix.
	if err := f.Truncate(good); err != nil {
		f.Close()
		return nil, fmt.Errorf("sweepclient: journal: %w", err)
	}
	if _, err := f.Seek(good, 0); err != nil {
		f.Close()
		return nil, fmt.Errorf("sweepclient: journal: %w", err)
	}
	return j, nil
}

// load parses the journal into seen and returns the byte length of the
// intact record prefix.
func (j *Journal) load() (int64, error) {
	data, err := os.ReadFile(j.path)
	if err != nil {
		return 0, fmt.Errorf("sweepclient: journal: %w", err)
	}
	var good int64
	for off := 0; off < len(data); {
		nl := bytes.IndexByte(data[off:], '\n')
		if nl < 0 {
			// No terminator: the torn tail of a crashed append. Keep the
			// prefix, drop the tail.
			break
		}
		line := bytes.TrimSpace(data[off : off+nl])
		end := int64(off + nl + 1)
		off += nl + 1
		if len(line) == 0 {
			good = end
			continue
		}
		var rec journalRecord
		if err := json.Unmarshal(line, &rec); err != nil || !validHash(rec.Hash) {
			if end == int64(len(data)) {
				// A complete but garbled final line — a crash can tear a
				// record and still land the newline. Recoverable the same
				// way: truncate it, the point re-runs.
				break
			}
			return 0, fmt.Errorf("sweepclient: %s does not look like a resume journal (bad record at byte %d)", j.path, off-nl-1)
		}
		j.seen[rec.Hash] = struct{}{}
		good = end
	}
	return good, nil
}

// Len returns how many distinct completed hashes the journal holds.
func (j *Journal) Len() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return len(j.seen)
}

// Has reports whether hash is journaled as completed.
func (j *Journal) Has(hash string) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	_, ok := j.seen[hash]
	return ok
}

// Record durably appends a completed point hash: the record is written
// and fsync'd before Record returns, so a client killed afterwards
// resumes past this point. Re-recording a known hash is a no-op.
func (j *Journal) Record(hash string) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if _, ok := j.seen[hash]; ok {
		return nil
	}
	line, err := json.Marshal(journalRecord{Hash: hash})
	if err != nil {
		return fmt.Errorf("sweepclient: journal: %w", err)
	}
	line = append(line, '\n')
	if _, err := j.f.Write(line); err != nil {
		return fmt.Errorf("sweepclient: journal: %w", err)
	}
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("sweepclient: journal: %w", err)
	}
	j.seen[hash] = struct{}{}
	return nil
}

// Close closes the journal file. Recorded completions are already
// durable; Close only releases the handle.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.f.Close()
}

// validHash reports whether h is a canonical 64-digit lowercase hex
// sha256 string — the only thing a journal record may carry.
func validHash(h string) bool {
	if len(h) != 64 {
		return false
	}
	for i := 0; i < len(h); i++ {
		c := h[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}
