package sweepclient

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// jhash builds a distinct valid journal hash.
func jhash(i int) string { return fmt.Sprintf("%064x", 0xabc0+i) }

func TestJournalRecordAndReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "resume.ndjson")
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := j.Record(jhash(i)); err != nil {
			t.Fatal(err)
		}
	}
	// Duplicate records are no-ops, on the Len and on the file.
	if err := j.Record(jhash(0)); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	j2, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if j2.Len() != 5 {
		t.Fatalf("reopened Len = %d, want 5", j2.Len())
	}
	for i := 0; i < 5; i++ {
		if !j2.Has(jhash(i)) {
			t.Fatalf("reopened journal lost %s", jhash(i))
		}
	}
	if j2.Has(jhash(99)) {
		t.Fatal("journal invented a completion")
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if n := strings.Count(string(data), "\n"); n != 5 {
		t.Fatalf("file has %d records, want 5 (duplicate appended?)", n)
	}
}

func TestJournalTruncatesTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "resume.ndjson")
	intact := fmt.Sprintf("{\"hash\":%q}\n{\"hash\":%q}\n", jhash(1), jhash(2))
	// A crash mid-append leaves a half-written record with no newline.
	if err := os.WriteFile(path, []byte(intact+`{"hash":"dead`), 0o644); err != nil {
		t.Fatal(err)
	}
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if j.Len() != 2 {
		t.Fatalf("Len = %d, want the 2 intact records", j.Len())
	}
	// The torn tail must be gone so the next append starts a clean line.
	if err := j.Record(jhash(3)); err != nil {
		t.Fatal(err)
	}
	j.Close()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	want := intact + fmt.Sprintf("{\"hash\":%q}\n", jhash(3))
	if string(data) != want {
		t.Fatalf("file after torn-tail recovery:\n%q\nwant:\n%q", data, want)
	}
}

func TestJournalTruncatesGarbledFinalLine(t *testing.T) {
	path := filepath.Join(t.TempDir(), "resume.ndjson")
	intact := fmt.Sprintf("{\"hash\":%q}\n", jhash(1))
	// A crash can tear a record and still land the newline.
	if err := os.WriteFile(path, []byte(intact+"{\"ha}\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	if j.Len() != 1 || !j.Has(jhash(1)) {
		t.Fatalf("Len = %d, want the 1 intact record", j.Len())
	}
}

func TestJournalRejectsForeignFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "notes.txt")
	// Malformed content before the final line cannot be crash debris;
	// appending would destroy whatever this file is.
	if err := os.WriteFile(path, []byte("dear diary\nnothing happened\n"+`{"hash":"x"}`+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenJournal(path); err == nil {
		t.Fatal("journal opened a file that is clearly not a journal")
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "dear diary") {
		t.Fatal("rejected file was modified")
	}
}
