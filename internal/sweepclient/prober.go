package sweepclient

// prober.go — active fleet membership. The fleet cannot shard onto
// daemons it merely hopes are alive: a dead shard would eat its points'
// retry budget round after round. The prober polls every member's
// /v1/healthz on an interval, folds in the fleet's own submission
// outcomes (a failed shard POST is evidence too), and maintains the
// healthy membership the ring is rebuilt from each round:
//
//   - Eviction: FailThreshold consecutive failures (probe or
//     submission) mark a member unhealthy and its points rebalance
//     onto the survivors.
//   - Re-admission: one successful probe restores a member — the next
//     round's ring includes it again, and only still-unfinished points
//     flow back to it (completed points live in the shared store).
//   - Load awareness: the extended /v1/healthz JSON carries queue
//     depth and store stats; the fleet uses them to prefer
//     lightly-loaded members for result lookups and to halve the
//     bounded-load cap of saturated ones.
//
// A 503 from /v1/healthz is a live-but-saturated daemon, not a dead
// one: it stays in membership (its jobs are still running; the fleet's
// backoff handles the shedding) but is marked saturated.

import (
	"encoding/json"
	"io"
	"net/http"
	"sort"
	"sync"
	"time"
)

// Prober defaults.
const (
	DefaultProbeInterval = 500 * time.Millisecond
	DefaultFailThreshold = 2
)

// MemberHealth is a point-in-time view of one fleet member.
type MemberHealth struct {
	URL     string
	Healthy bool
	// Fails counts consecutive probe/submission failures since the last
	// success.
	Fails int
	// Saturated mirrors the daemon's queue-saturation flag from its last
	// successful probe.
	Saturated bool
	// Queue and QueueCapacity are the daemon's worker-queue occupancy
	// from its last successful probe.
	Queue, QueueCapacity int
	// StoreEntries/StoreBytes/StoreQuarantined mirror the daemon's
	// persistent-store stats (zero when it runs without a store).
	StoreEntries     int
	StoreBytes       int64
	StoreQuarantined int64
}

// utilization orders members by load for "prefer lightly loaded".
func (m MemberHealth) utilization() float64 {
	if m.QueueCapacity <= 0 {
		return 0
	}
	return float64(m.Queue) / float64(m.QueueCapacity)
}

// healthzBody is the subset of the daemon's /v1/healthz JSON the
// prober reads. Old daemons without the store block still parse — the
// bare-200 contract is the only hard requirement.
type healthzBody struct {
	OK            bool `json:"ok"`
	Queue         int  `json:"queue"`
	QueueCapacity int  `json:"queue_capacity"`
	Saturated     bool `json:"saturated"`
	Store         *struct {
		Entries     int   `json:"entries"`
		Bytes       int64 `json:"bytes"`
		Quarantined int64 `json:"quarantined"`
	} `json:"store"`
}

// prober tracks fleet membership health in the background.
type prober struct {
	http      *http.Client
	interval  time.Duration
	threshold int
	logf      func(format string, args ...any)

	mu      sync.Mutex
	members map[string]*MemberHealth
	order   []string // stable iteration order

	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}
}

// newProber starts probing urls every interval. Members start healthy
// (optimistically — the first round of real traffic corrects fast), and
// one probe round runs synchronously before the background loop so the
// initial view reflects reality when the daemons answer promptly.
func newProber(urls []string, client *http.Client, interval time.Duration, threshold int, logf func(string, ...any)) *prober {
	if interval <= 0 {
		interval = DefaultProbeInterval
	}
	if threshold <= 0 {
		threshold = DefaultFailThreshold
	}
	p := &prober{
		http:      client,
		interval:  interval,
		threshold: threshold,
		logf:      logf,
		members:   make(map[string]*MemberHealth, len(urls)),
		order:     append([]string(nil), urls...),
		stop:      make(chan struct{}),
		done:      make(chan struct{}),
	}
	for _, u := range urls {
		p.members[u] = &MemberHealth{URL: u, Healthy: true}
	}
	p.probeAll()
	go p.loop()
	return p
}

// loop polls until Close.
func (p *prober) loop() {
	defer close(p.done)
	t := time.NewTicker(p.interval)
	defer t.Stop()
	for {
		select {
		case <-p.stop:
			return
		case <-t.C:
			p.probeAll()
		}
	}
}

// Close stops the background loop.
func (p *prober) Close() {
	p.stopOnce.Do(func() { close(p.stop) })
	<-p.done
}

// probeAll probes every member once, concurrently.
func (p *prober) probeAll() {
	p.mu.Lock()
	urls := append([]string(nil), p.order...)
	p.mu.Unlock()
	var wg sync.WaitGroup
	for _, u := range urls {
		wg.Add(1)
		go func(u string) {
			defer wg.Done()
			p.probeOne(u)
		}(u)
	}
	wg.Wait()
}

// probeOne polls one member's /v1/healthz and folds the outcome in.
func (p *prober) probeOne(url string) {
	req, err := http.NewRequest(http.MethodGet, url+"/v1/healthz", nil)
	if err != nil {
		p.reportFailure(url, err)
		return
	}
	resp, err := p.http.Do(req)
	if err != nil {
		p.reportFailure(url, err)
		return
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
	// 200 is healthy; 503 is the daemon's own load-shedding signal —
	// alive, just saturated. Anything else is a failure.
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusServiceUnavailable {
		p.reportFailure(url, err)
		return
	}
	var h healthzBody
	_ = json.Unmarshal(body, &h) // a bare 200 with no JSON still counts
	if resp.StatusCode == http.StatusServiceUnavailable {
		h.Saturated = true
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	m := p.members[url]
	if m == nil {
		return
	}
	if !m.Healthy {
		p.logfLocked("sweepclient: daemon %s recovered; re-admitting", url)
	}
	m.Healthy = true
	m.Fails = 0
	m.Saturated = h.Saturated
	m.Queue, m.QueueCapacity = h.Queue, h.QueueCapacity
	if h.Store != nil {
		m.StoreEntries, m.StoreBytes, m.StoreQuarantined = h.Store.Entries, h.Store.Bytes, h.Store.Quarantined
	}
}

// reportFailure records one failed interaction (probe or submission)
// with a member, evicting it at the threshold.
func (p *prober) reportFailure(url string, cause error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	m := p.members[url]
	if m == nil {
		return
	}
	m.Fails++
	if m.Healthy && m.Fails >= p.threshold {
		m.Healthy = false
		p.logfLocked("sweepclient: daemon %s evicted after %d consecutive failures (%v)", url, m.Fails, cause)
	}
}

// reportSuccess records one successful interaction, re-admitting the
// member if it was evicted.
func (p *prober) reportSuccess(url string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	m := p.members[url]
	if m == nil {
		return
	}
	if !m.Healthy {
		p.logfLocked("sweepclient: daemon %s served traffic; re-admitting", url)
	}
	m.Healthy = true
	m.Fails = 0
}

// healthy snapshots the healthy members, lightly-loaded first (queue
// utilization, then URL for determinism).
func (p *prober) healthy() []MemberHealth {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]MemberHealth, 0, len(p.order))
	for _, u := range p.order {
		if m := p.members[u]; m.Healthy {
			out = append(out, *m)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		ui, uj := out[i].utilization(), out[j].utilization()
		if ui != uj {
			return ui < uj
		}
		return out[i].URL < out[j].URL
	})
	return out
}

// snapshot reports every member's state, in construction order.
func (p *prober) snapshot() []MemberHealth {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]MemberHealth, 0, len(p.order))
	for _, u := range p.order {
		out = append(out, *p.members[u])
	}
	return out
}

// logfLocked logs under p.mu (the logger itself must not call back).
func (p *prober) logfLocked(format string, args ...any) {
	if p.logf != nil {
		p.logf(format, args...)
	}
}
