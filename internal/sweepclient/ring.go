package sweepclient

// ring.go — the fleet's consistent-hash ring. Every sweep point owns a
// canonical sha256 hash (spec.CanonicalHash), and the ring maps that
// hash to one daemon of the current healthy membership. Consistent
// hashing keeps the mapping stable under membership change: when a
// daemon dies or recovers, only the points it owned (plus a small
// bounded-load spill) move, so a mid-sweep failover re-submits the dead
// shard's unfinished points and nothing else.
//
// The ring is the bounded-load variant: a plain consistent hash can
// assign one member far more than its share (hash ranges are uneven),
// which turns the slowest daemon into the sweep's critical path. Assign
// therefore caps each member at ceil(factor · points / members) and
// walks a capped point clockwise to the next member with room — load
// never exceeds the cap, and the walk preserves determinism because it
// depends only on the ring layout and the point order.

import (
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"math"
	"sort"
	"strconv"
)

// Ring defaults.
const (
	// DefaultRingReplicas is the virtual-node count per member; more
	// replicas smooth the hash-range imbalance between members.
	DefaultRingReplicas = 128
	// DefaultLoadFactor is the bounded-load factor c: no member is
	// assigned more than ceil(c · points / members) points.
	DefaultLoadFactor = 1.25
)

// Ring is a bounded-load consistent-hash ring over a fixed membership.
// Build one per round from the currently healthy members; construction
// is deterministic in the member set (order-insensitive).
type Ring struct {
	members []string // sorted unique
	slots   []ringSlot
	factor  float64
}

// ringSlot is one virtual node: a point on the hash circle owned by a
// member.
type ringSlot struct {
	hash   uint64
	member int // index into members
}

// NewRing builds a ring over members with the given virtual-node count
// and bounded-load factor (zero values take the defaults; the factor
// must be ≥ 1). Duplicate members collapse; the member order does not
// matter.
func NewRing(members []string, replicas int, factor float64) (*Ring, error) {
	if len(members) == 0 {
		return nil, errors.New("sweepclient: ring needs at least one member")
	}
	if replicas <= 0 {
		replicas = DefaultRingReplicas
	}
	if factor == 0 {
		factor = DefaultLoadFactor
	}
	if factor < 1 {
		return nil, errors.New("sweepclient: ring load factor must be >= 1")
	}
	uniq := make([]string, 0, len(members))
	seen := make(map[string]bool, len(members))
	for _, m := range members {
		if !seen[m] {
			seen[m] = true
			uniq = append(uniq, m)
		}
	}
	sort.Strings(uniq)
	r := &Ring{members: uniq, factor: factor}
	r.slots = make([]ringSlot, 0, len(uniq)*replicas)
	for mi, m := range uniq {
		for v := 0; v < replicas; v++ {
			r.slots = append(r.slots, ringSlot{hash: hash64(m + "#" + strconv.Itoa(v)), member: mi})
		}
	}
	// Ties (astronomically unlikely) break by member index so the layout
	// is a pure function of the membership.
	sort.Slice(r.slots, func(i, j int) bool {
		if r.slots[i].hash != r.slots[j].hash {
			return r.slots[i].hash < r.slots[j].hash
		}
		return r.slots[i].member < r.slots[j].member
	})
	return r, nil
}

// Members returns the ring's membership, sorted. Caps passed to Assign
// align with this order.
func (r *Ring) Members() []string {
	out := make([]string, len(r.members))
	copy(out, r.members)
	return out
}

// Owner returns the unbounded owner of a point hash: the member of the
// first slot at or clockwise of the hash. Removing another member never
// changes a point's owner (minimal movement); Assign adds the load
// bound on top.
func (r *Ring) Owner(pointHash string) string {
	return r.members[r.slots[r.slotAt(pointHash)].member]
}

// slotAt locates the first slot at or clockwise of the hash.
func (r *Ring) slotAt(pointHash string) int {
	h := hash64(pointHash)
	i := sort.Search(len(r.slots), func(i int) bool { return r.slots[i].hash >= h })
	if i == len(r.slots) {
		i = 0 // wrap
	}
	return i
}

// Assign shards the point hashes across the membership with bounded
// load and returns, per member, the indexes (into hashes) it owns.
// caps, when non-nil, overrides each member's load cap (aligned with
// Members()); nil applies the uniform bound ceil(factor·n/m). Caps are
// raised uniformly if their sum cannot fit every point, so every point
// is always assigned. The result is deterministic in (membership,
// hashes, caps).
func (r *Ring) Assign(hashes []string, caps []int) map[string][]int {
	m := len(r.members)
	base := int(math.Ceil(r.factor * float64(len(hashes)) / float64(m)))
	if base < 1 {
		base = 1
	}
	limit := make([]int, m)
	total := 0
	for i := range limit {
		limit[i] = base
		if caps != nil && caps[i] >= 0 {
			limit[i] = caps[i]
			if limit[i] < 1 {
				limit[i] = 1
			}
		}
		total += limit[i]
	}
	// Make sure the caps can hold every point: raise all caps evenly
	// rather than failing — the bound shapes balance, it must never
	// strand a point.
	for total < len(hashes) {
		for i := range limit {
			limit[i]++
			total++
		}
	}

	load := make([]int, m)
	out := make(map[string][]int, m)
	for pi, ph := range hashes {
		start := r.slotAt(ph)
		for off := 0; ; off++ {
			slot := r.slots[(start+off)%len(r.slots)]
			if load[slot.member] >= limit[slot.member] {
				continue
			}
			load[slot.member]++
			member := r.members[slot.member]
			out[member] = append(out[member], pi)
			break
		}
	}
	return out
}

// hash64 maps a string to a point on the 64-bit hash circle. sha256 is
// already the canonical point identity, so the ring inherits its
// uniformity; member virtual nodes go through the same function.
func hash64(s string) uint64 {
	sum := sha256.Sum256([]byte(s))
	return binary.BigEndian.Uint64(sum[:8])
}
