package sweepclient

import (
	"fmt"
	"testing"
)

// ringHashes builds n distinct synthetic point hashes (the ring only
// needs strings; real callers pass canonical spec hashes).
func ringHashes(n int) []string {
	hs := make([]string, n)
	for i := range hs {
		hs[i] = fmt.Sprintf("%064x", i+1)
	}
	return hs
}

func TestRingDeterministicAndOrderInsensitive(t *testing.T) {
	a, err := NewRing([]string{"http://a", "http://b", "http://c"}, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewRing([]string{"http://c", "http://a", "http://b", "http://a"}, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	hashes := ringHashes(500)
	for _, h := range hashes {
		if a.Owner(h) != b.Owner(h) {
			t.Fatalf("owner of %s differs across member orderings: %s vs %s", h[:8], a.Owner(h), b.Owner(h))
		}
	}
	asgA, asgB := a.Assign(hashes, nil), b.Assign(hashes, nil)
	for m, idx := range asgA {
		if fmt.Sprint(asgB[m]) != fmt.Sprint(idx) {
			t.Fatalf("assignment for %s differs across member orderings", m)
		}
	}
}

func TestRingMinimalMovementOnMemberLoss(t *testing.T) {
	full, err := NewRing([]string{"http://a", "http://b", "http://c"}, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	reduced, err := NewRing([]string{"http://a", "http://b"}, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	moved := 0
	hashes := ringHashes(2000)
	for _, h := range hashes {
		before := full.Owner(h)
		after := reduced.Owner(h)
		if before != "http://c" && before != after {
			// Removing c may only move c's points; anything else moving
			// breaks the failover contract (survivors would re-run points
			// they already own).
			t.Fatalf("point %s moved %s -> %s though its owner survived", h[:8], before, after)
		}
		if before != after {
			moved++
		}
	}
	if moved == 0 {
		t.Fatal("no point moved when a member left; c owned nothing?")
	}
}

func TestRingBoundedLoad(t *testing.T) {
	r, err := NewRing([]string{"http://a", "http://b", "http://c"}, 0, 1.25)
	if err != nil {
		t.Fatal(err)
	}
	hashes := ringHashes(999)
	asg := r.Assign(hashes, nil)
	cap := 417 // ceil(1.25 * 999 / 3)
	seen := make(map[int]bool)
	for m, idx := range asg {
		if len(idx) > cap {
			t.Fatalf("member %s got %d points, above the bounded-load cap %d", m, len(idx), cap)
		}
		if len(idx) == 0 {
			t.Fatalf("member %s got no points out of %d", m, len(hashes))
		}
		for _, i := range idx {
			if seen[i] {
				t.Fatalf("point %d assigned twice", i)
			}
			seen[i] = true
		}
	}
	if len(seen) != len(hashes) {
		t.Fatalf("assigned %d of %d points", len(seen), len(hashes))
	}
}

func TestRingCapsOverrideAndRaise(t *testing.T) {
	r, err := NewRing([]string{"http://a", "http://b", "http://c"}, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	hashes := ringHashes(12)
	// Saturate the first (sorted) member down to cap 1. Sum of caps
	// (1 + 5 + 5) falls short of 12, so Assign raises all caps by one:
	// the squeezed member may take at most 2.
	asg := r.Assign(hashes, []int{1, -1, -1})
	total := 0
	for m, idx := range asg {
		total += len(idx)
		if m == r.Members()[0] && len(idx) > 2 {
			t.Fatalf("capped member %s got %d points, want <= 2", m, len(idx))
		}
	}
	if total != len(hashes) {
		t.Fatalf("assigned %d of %d points; caps must never strand a point", total, len(hashes))
	}
}

func TestRingRejectsBadInputs(t *testing.T) {
	if _, err := NewRing(nil, 0, 0); err == nil {
		t.Fatal("empty membership accepted")
	}
	if _, err := NewRing([]string{"http://a"}, 0, 0.5); err == nil {
		t.Fatal("load factor < 1 accepted")
	}
}
