package trace

import (
	"fmt"
	"io"

	"coemu/internal/amba"
)

// Divergence describes the first mismatch between two traces.
type Divergence struct {
	// Cycle is the index of the first differing cycle; -1 when the
	// traces are identical over their common prefix and equal length.
	Cycle int
	// Fields lists the MSABS signal groups that differ at Cycle.
	Fields []string
	// LenA, LenB are the trace lengths (a length mismatch with an
	// identical common prefix reports Cycle == min length).
	LenA, LenB int
}

// Identical reports whether no divergence was found.
func (d Divergence) Identical() bool { return d.Cycle < 0 }

// String renders the finding.
func (d Divergence) String() string {
	if d.Identical() {
		return fmt.Sprintf("traces identical (%d cycles)", d.LenA)
	}
	if len(d.Fields) == 0 {
		return fmt.Sprintf("length mismatch: %d vs %d cycles", d.LenA, d.LenB)
	}
	return fmt.Sprintf("first divergence at cycle %d in %v", d.Cycle, d.Fields)
}

// diffFields lists the signal groups differing between two cycle states.
func diffFields(a, b amba.CycleState) []string {
	var f []string
	if a.AP != b.AP {
		f = append(f, "address/control")
	}
	if a.WData != b.WData {
		f = append(f, "HWDATA")
	}
	if a.Reply != b.Reply {
		f = append(f, "HRDATA/HRESP/HREADY")
	}
	if a.Req != b.Req {
		f = append(f, "HBUSREQ")
	}
	if a.Grant != b.Grant {
		f = append(f, "HGRANT")
	}
	if a.IRQ != b.IRQ {
		f = append(f, "IRQ")
	}
	if a.Split != b.Split {
		f = append(f, "HSPLITx")
	}
	return f
}

// Diff locates the first divergence between two MSABS traces.
func Diff(a, b []amba.CycleState) Divergence {
	d := Divergence{Cycle: -1, LenA: len(a), LenB: len(b)}
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if !a[i].Equal(b[i]) {
			d.Cycle = i
			d.Fields = diffFields(a[i], b[i])
			return d
		}
	}
	if len(a) != len(b) {
		d.Cycle = n
	}
	return d
}

// WriteDiffReport renders a human-readable divergence report with a
// context window of cycles around the first mismatch — the format a
// co-emulation debugging session starts from.
func WriteDiffReport(w io.Writer, nameA, nameB string, a, b []amba.CycleState, context int) error {
	d := Diff(a, b)
	if _, err := fmt.Fprintln(w, d); err != nil {
		return err
	}
	if d.Identical() || len(d.Fields) == 0 {
		return nil
	}
	lo := d.Cycle - context
	if lo < 0 {
		lo = 0
	}
	hi := d.Cycle + context + 1
	for i := lo; i < hi && i < len(a) && i < len(b); i++ {
		marker := " "
		if i == d.Cycle {
			marker = ">"
		}
		if _, err := fmt.Fprintf(w, "%s cycle %6d\n  %-10s %s\n  %-10s %s\n",
			marker, i, nameA, a[i], nameB, b[i]); err != nil {
			return err
		}
	}
	return nil
}
