package trace

import (
	"strings"
	"testing"
)

func TestDiffIdentical(t *testing.T) {
	tr := sampleTrace()
	d := Diff(tr, tr)
	if !d.Identical() {
		t.Fatalf("identical traces reported: %v", d)
	}
	if !strings.Contains(d.String(), "identical") {
		t.Fatalf("string: %q", d.String())
	}
}

func TestDiffFindsFieldLevelMismatch(t *testing.T) {
	a := sampleTrace()
	b := sampleTrace()
	b[1].WData = 0xFF
	b[1].Req = 0
	d := Diff(a, b)
	if d.Cycle != 1 {
		t.Fatalf("cycle = %d", d.Cycle)
	}
	joined := strings.Join(d.Fields, ",")
	if !strings.Contains(joined, "HWDATA") || !strings.Contains(joined, "HBUSREQ") {
		t.Fatalf("fields = %v", d.Fields)
	}
}

func TestDiffLengthMismatch(t *testing.T) {
	a := sampleTrace()
	d := Diff(a, a[:2])
	if d.Identical() || len(d.Fields) != 0 || d.Cycle != 2 {
		t.Fatalf("divergence = %+v", d)
	}
	if !strings.Contains(d.String(), "length mismatch") {
		t.Fatalf("string: %q", d.String())
	}
}

func TestWriteDiffReport(t *testing.T) {
	a := sampleTrace()
	b := sampleTrace()
	b[2].Reply.Ready = true
	var sb strings.Builder
	if err := WriteDiffReport(&sb, "ref", "coemu", a, b, 1); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "> cycle      2") {
		t.Fatalf("report missing marker:\n%s", out)
	}
	if !strings.Contains(out, "ref") || !strings.Contains(out, "coemu") {
		t.Fatalf("report missing names:\n%s", out)
	}
	// Context line (cycle 1) must be present too.
	if !strings.Contains(out, "cycle      1") {
		t.Fatalf("report missing context:\n%s", out)
	}
}

func TestDiffSplitField(t *testing.T) {
	a := sampleTrace()
	b := sampleTrace()
	b[0].Split = 0x2
	d := Diff(a, b)
	if d.Cycle != 0 || len(d.Fields) != 1 || d.Fields[0] != "HSPLITx" {
		t.Fatalf("divergence = %+v", d)
	}
}
