package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// EventKind classifies one engine trace event. The tracer records the
// run-ahead protocol at cycle granularity: spans for the three cycle
// loops (conservative stretches, leader run-ahead, lagger follow-up)
// and instants for the decisions between them (mispredictions,
// rollbacks, batch commits, channel flushes).
type EventKind uint8

// Engine event kinds.
const (
	// EvConservative is a span of conservatively synchronized cycles.
	EvConservative EventKind = iota
	// EvRunAhead is a leader's optimistic run-ahead span (N committed
	// cycles against predictions); Domain is the leader.
	EvRunAhead
	// EvFollowUp is the lagger's replay span of a flushed LOB; Domain
	// is the lagger.
	EvFollowUp
	// EvRollForth is the leader's replay span after a rollback (N
	// re-executed cycles); Domain is the leader.
	EvRollForth
	// EvMispredict marks one checked prediction that failed; Arg is 1
	// when the miss was fault-injected, 0 when organic.
	EvMispredict
	// EvRollback marks a leader state restore; Arg is the rollback
	// depth (cycles discarded and replayed).
	EvRollback
	// EvBatchCommit marks a predicted-quiescence batched advance of N
	// cycles taken in one step.
	EvBatchCommit
	// EvFlush marks a LOB flush crossing the channel; Arg is the
	// payload size in words, Domain the sending leader.
	EvFlush
	// EvSync marks a conservative synchronization point opening a
	// transition boundary (the engine chose a leader); Domain is the
	// leader about to run ahead.
	EvSync
	// EvStore marks a rollback-state store (snapshot) by the leader.
	EvStore
	// EvTransportConnect marks a remote transport establishing (or
	// accepting) its session; Arg is the connection generation (0 for
	// the first connect). Transport events carry the frame sequence
	// number in Cycle — host wall time is not cycle time, and the
	// sequence axis keeps the export deterministic.
	EvTransportConnect
	// EvTransportResync marks a resync request sent to the peer; Arg is
	// the next expected sequence number.
	EvTransportResync
	// EvTransportRetransmit marks a retransmission burst answering a
	// peer resync; N is the number of frames re-sent.
	EvTransportRetransmit
	// EvTransportReconnect marks a connection loss healed by redial (or
	// re-accept); Arg is the new connection generation.
	EvTransportReconnect
)

// eventKindNames maps kinds to their wire names (stable: the JSON
// export and the Chrome track mapping both key on them).
var eventKindNames = [...]string{
	EvConservative: "conservative",
	EvRunAhead:     "run_ahead",
	EvFollowUp:     "follow_up",
	EvRollForth:    "roll_forth",
	EvMispredict:   "mispredict",
	EvRollback:     "rollback",
	EvBatchCommit:  "batch_commit",
	EvFlush:        "flush",
	EvSync:         "sync",
	EvStore:        "store",

	EvTransportConnect:    "transport_connect",
	EvTransportResync:     "transport_resync",
	EvTransportRetransmit: "transport_retransmit",
	EvTransportReconnect:  "transport_reconnect",
}

// String returns the kind's wire name.
func (k EventKind) String() string {
	if int(k) < len(eventKindNames) {
		return eventKindNames[k]
	}
	return fmt.Sprintf("EventKind(%d)", uint8(k))
}

// Event is one recorded engine event. Cycle is the committed
// target-cycle position the event belongs to, N the span length in
// cycles (0 for instant events), Domain the acting domain (0 sim,
// 1 acc, 255 none) and Arg a kind-specific payload (rollback depth,
// flush words, injected flag).
type Event struct {
	Cycle  int64
	N      int64
	Kind   EventKind
	Domain uint8
	Arg    int64
}

// NoDomain is the Event.Domain value for events not tied to a domain.
const NoDomain uint8 = 255

// BatchCommit phases carried in Event.Arg: which cycle loop took the
// batched step.
const (
	// BatchConservative marks a batched conservative stretch.
	BatchConservative int64 = iota
	// BatchRunAhead marks a batched leader run-ahead advance.
	BatchRunAhead
	// BatchFollowUp marks a batched lagger follow-up replay.
	BatchFollowUp
)

// Recorder is a fixed-capacity ring buffer of engine events. It is
// deliberately unsynchronized: the engine's cycle loop is
// single-threaded, and the only safe concurrent read is after the run
// finished (the service publishes completion under its mutex, which
// orders the reads). Record never allocates once the ring is built, so
// an enabled tracer adds no allocations to the engine hot path.
type Recorder struct {
	buf     []Event
	next    int   // write position
	n       int   // live events (≤ len(buf))
	dropped int64 // events overwritten after the ring wrapped
}

// DefaultRingSize is the event capacity used when a ring size of 0 is
// requested: large enough for the full event stream of the example
// runs, small enough (~3 MB) to be a per-job default.
const DefaultRingSize = 1 << 16

// NewRecorder creates a recorder with capacity ringSize (0 selects
// DefaultRingSize).
func NewRecorder(ringSize int) *Recorder {
	if ringSize <= 0 {
		ringSize = DefaultRingSize
	}
	return &Recorder{buf: make([]Event, ringSize)}
}

// Record appends one event, overwriting the oldest when the ring is
// full.
func (r *Recorder) Record(ev Event) {
	if r.n == len(r.buf) {
		r.dropped++
	} else {
		r.n++
	}
	r.buf[r.next] = ev
	r.next++
	if r.next == len(r.buf) {
		r.next = 0
	}
}

// Len returns the number of retained events.
func (r *Recorder) Len() int { return r.n }

// Dropped returns how many events were overwritten after the ring
// wrapped.
func (r *Recorder) Dropped() int64 { return r.dropped }

// Events returns the retained events oldest first.
func (r *Recorder) Events() []Event {
	out := make([]Event, 0, r.n)
	start := r.next - r.n
	if start < 0 {
		start += len(r.buf)
	}
	for i := 0; i < r.n; i++ {
		out = append(out, r.buf[(start+i)%len(r.buf)])
	}
	return out
}

// eventJSON is the JSON projection of one event.
type eventJSON struct {
	Cycle  int64  `json:"cycle"`
	N      int64  `json:"n,omitempty"`
	Kind   string `json:"kind"`
	Domain string `json:"domain,omitempty"`
	Arg    int64  `json:"arg,omitempty"`
}

// domainName renders an event's domain for export.
func domainName(d uint8) string {
	switch d {
	case 0:
		return "sim"
	case 1:
		return "acc"
	default:
		return ""
	}
}

// WriteEventsJSON exports events as a JSON document:
// {"dropped": d, "events": [...]}.
func WriteEventsJSON(w io.Writer, events []Event, dropped int64) error {
	doc := struct {
		Dropped int64       `json:"dropped"`
		Events  []eventJSON `json:"events"`
	}{Dropped: dropped, Events: make([]eventJSON, len(events))}
	for i, ev := range events {
		doc.Events[i] = eventJSON{
			Cycle:  ev.Cycle,
			N:      ev.N,
			Kind:   ev.Kind.String(),
			Domain: domainName(ev.Domain),
			Arg:    ev.Arg,
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(&doc)
}

// Chrome trace_event track ids: one lane per protocol phase so the
// run-ahead timeline reads top to bottom in Perfetto.
const (
	tidConservative = 0
	tidRunAhead     = 1
	tidFollowUp     = 2
	tidRollback     = 3
	tidChannel      = 4
	tidTransport    = 5
)

// chromeTracks names the Perfetto lanes emitted as thread_name
// metadata.
var chromeTracks = map[int]string{
	tidConservative: "conservative sync",
	tidRunAhead:     "run-ahead (leader)",
	tidFollowUp:     "follow-up (lagger)",
	tidRollback:     "rollback / roll-forth",
	tidChannel:      "channel",
	tidTransport:    "transport (frame seq)",
}

// WriteChromeTrace exports events in Chrome trace_event JSON array
// format, loadable directly in Perfetto (ui.perfetto.dev) or
// chrome://tracing. The timeline is target-cycle time: 1 µs of trace
// time per target cycle, so span widths read as cycle counts.
func WriteChromeTrace(w io.Writer, events []Event) error {
	var b strings.Builder
	b.WriteByte('[')
	first := true
	emit := func(v any) error {
		data, err := json.Marshal(v)
		if err != nil {
			return err
		}
		if !first {
			b.WriteByte(',')
		}
		first = false
		b.WriteByte('\n')
		b.Write(data)
		return nil
	}
	type meta struct {
		Name string         `json:"name"`
		Ph   string         `json:"ph"`
		Pid  int            `json:"pid"`
		Tid  int            `json:"tid"`
		Args map[string]any `json:"args"`
	}
	if err := emit(meta{Name: "process_name", Ph: "M", Pid: 0,
		Args: map[string]any{"name": "coemu engine (target-cycle time)"}}); err != nil {
		return err
	}
	for tid := 0; tid < len(chromeTracks); tid++ {
		if err := emit(meta{Name: "thread_name", Ph: "M", Pid: 0, Tid: tid,
			Args: map[string]any{"name": chromeTracks[tid]}}); err != nil {
			return err
		}
	}
	type span struct {
		Name string         `json:"name"`
		Cat  string         `json:"cat"`
		Ph   string         `json:"ph"`
		Ts   int64          `json:"ts"`
		Dur  int64          `json:"dur,omitempty"`
		Pid  int            `json:"pid"`
		Tid  int            `json:"tid"`
		S    string         `json:"s,omitempty"`
		Args map[string]any `json:"args,omitempty"`
	}
	for _, ev := range events {
		s := span{Name: ev.Kind.String(), Cat: "engine", Ts: ev.Cycle, Pid: 0}
		if d := domainName(ev.Domain); d != "" {
			s.Args = map[string]any{"domain": d}
		}
		addArg := func(k string, v any) {
			if s.Args == nil {
				s.Args = map[string]any{}
			}
			s.Args[k] = v
		}
		switch ev.Kind {
		case EvConservative:
			s.Ph, s.Tid, s.Dur = "X", tidConservative, max64(ev.N, 1)
			addArg("cycles", ev.N)
		case EvRunAhead:
			s.Ph, s.Tid, s.Dur = "X", tidRunAhead, max64(ev.N, 1)
			addArg("cycles", ev.N)
		case EvFollowUp:
			s.Ph, s.Tid, s.Dur = "X", tidFollowUp, max64(ev.N, 1)
			addArg("cycles", ev.N)
		case EvRollForth:
			s.Ph, s.Tid, s.Dur = "X", tidRollback, max64(ev.N, 1)
			addArg("cycles", ev.N)
		case EvMispredict:
			s.Ph, s.Tid, s.S = "i", tidFollowUp, "t"
			addArg("injected", ev.Arg == 1)
		case EvRollback:
			s.Ph, s.Tid, s.S = "i", tidRollback, "t"
			addArg("depth", ev.Arg)
		case EvBatchCommit:
			// Batched cycles are already covered by their enclosing
			// span (conservative, run-ahead or follow-up); the instant
			// marks where a batch was taken in one step. Arg carries
			// the phase (see BatchPhase constants).
			s.Ph, s.S = "i", "t"
			switch ev.Arg {
			case BatchRunAhead:
				s.Tid = tidRunAhead
			case BatchFollowUp:
				s.Tid = tidFollowUp
			default:
				s.Tid = tidConservative
			}
			addArg("cycles", ev.N)
		case EvFlush:
			s.Ph, s.Tid, s.S = "i", tidChannel, "t"
			addArg("words", ev.Arg)
		case EvSync, EvStore:
			s.Ph, s.Tid, s.S = "i", tidRunAhead, "t"
		case EvTransportConnect, EvTransportReconnect:
			s.Ph, s.Tid, s.S = "i", tidTransport, "t"
			addArg("generation", ev.Arg)
		case EvTransportResync:
			s.Ph, s.Tid, s.S = "i", tidTransport, "t"
			addArg("expect", ev.Arg)
		case EvTransportRetransmit:
			s.Ph, s.Tid, s.S = "i", tidTransport, "t"
			addArg("frames", ev.N)
		default:
			s.Ph, s.Tid, s.S = "i", tidConservative, "t"
		}
		if err := emit(s); err != nil {
			return err
		}
	}
	b.WriteString("\n]\n")
	_, err := io.WriteString(w, b.String())
	return err
}

// max64 returns the larger of a and b.
func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
