package trace

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestRecorderRingOrderAndWrap(t *testing.T) {
	r := NewRecorder(4)
	for i := int64(0); i < 6; i++ {
		r.Record(Event{Cycle: i, Kind: EvConservative})
	}
	if r.Len() != 4 {
		t.Fatalf("len = %d, want 4", r.Len())
	}
	if r.Dropped() != 2 {
		t.Fatalf("dropped = %d, want 2", r.Dropped())
	}
	evs := r.Events()
	for i, ev := range evs {
		if want := int64(i + 2); ev.Cycle != want {
			t.Errorf("event %d cycle = %d, want %d (oldest-first after wrap)", i, ev.Cycle, want)
		}
	}
}

func TestRecorderDefaultSize(t *testing.T) {
	if got := len(NewRecorder(0).buf); got != DefaultRingSize {
		t.Fatalf("default ring = %d, want %d", got, DefaultRingSize)
	}
}

func TestRecordDoesNotAllocate(t *testing.T) {
	r := NewRecorder(1024)
	ev := Event{Cycle: 1, N: 2, Kind: EvRunAhead, Domain: 1, Arg: 3}
	allocs := testing.AllocsPerRun(100, func() {
		for i := 0; i < 2000; i++ { // force ring wrap inside the measurement
			r.Record(ev)
		}
	})
	if allocs != 0 {
		t.Fatalf("Record allocated %.1f objects per run, want 0", allocs)
	}
}

func TestWriteEventsJSON(t *testing.T) {
	events := []Event{
		{Cycle: 10, N: 5, Kind: EvRunAhead, Domain: 1},
		{Cycle: 15, Kind: EvMispredict, Domain: 0, Arg: 1},
		{Cycle: 15, Kind: EvRollback, Domain: 1, Arg: 3},
	}
	var b strings.Builder
	if err := WriteEventsJSON(&b, events, 7); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Dropped int64 `json:"dropped"`
		Events  []struct {
			Cycle  int64  `json:"cycle"`
			N      int64  `json:"n"`
			Kind   string `json:"kind"`
			Domain string `json:"domain"`
			Arg    int64  `json:"arg"`
		} `json:"events"`
	}
	if err := json.Unmarshal([]byte(b.String()), &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	if doc.Dropped != 7 || len(doc.Events) != 3 {
		t.Fatalf("decoded %+v", doc)
	}
	if doc.Events[0].Kind != "run_ahead" || doc.Events[0].Domain != "acc" || doc.Events[0].N != 5 {
		t.Errorf("run-ahead event decoded as %+v", doc.Events[0])
	}
	if doc.Events[2].Kind != "rollback" || doc.Events[2].Arg != 3 {
		t.Errorf("rollback event decoded as %+v", doc.Events[2])
	}
}

// TestWriteChromeTrace checks the Perfetto-loadable invariants: a valid
// JSON array, process/thread metadata first, complete events carrying
// ts+dur in target cycles, instants carrying a scope.
func TestWriteChromeTrace(t *testing.T) {
	events := []Event{
		{Cycle: 0, N: 20, Kind: EvConservative},
		{Cycle: 20, Kind: EvSync, Domain: 1},
		{Cycle: 20, Kind: EvStore, Domain: 1},
		{Cycle: 20, N: 40, Kind: EvRunAhead, Domain: 1},
		{Cycle: 20, Kind: EvFlush, Domain: 1, Arg: 17},
		{Cycle: 20, N: 40, Kind: EvFollowUp, Domain: 0},
		{Cycle: 35, Kind: EvMispredict, Domain: 0},
		{Cycle: 35, Kind: EvRollback, Domain: 1, Arg: 15},
		{Cycle: 35, N: 15, Kind: EvRollForth, Domain: 1},
		{Cycle: 60, N: 63, Kind: EvBatchCommit, Arg: BatchConservative},
	}
	var b strings.Builder
	if err := WriteChromeTrace(&b, events); err != nil {
		t.Fatal(err)
	}
	var arr []map[string]any
	if err := json.Unmarshal([]byte(b.String()), &arr); err != nil {
		t.Fatalf("chrome trace is not a valid JSON array: %v\n%s", err, b.String())
	}
	// 1 process_name + one thread_name metadata record per track, then
	// one record per event.
	meta := 1 + len(chromeTracks)
	if want := meta + len(events); len(arr) != want {
		t.Fatalf("trace has %d records, want %d", len(arr), want)
	}
	if arr[0]["ph"] != "M" || arr[0]["name"] != "process_name" {
		t.Errorf("first record is not process metadata: %v", arr[0])
	}
	var spans, instants int
	for _, rec := range arr[meta:] {
		switch rec["ph"] {
		case "X":
			spans++
			if _, ok := rec["dur"]; !ok {
				t.Errorf("complete event without dur: %v", rec)
			}
			if _, ok := rec["ts"]; !ok {
				t.Errorf("complete event without ts: %v", rec)
			}
		case "i":
			instants++
			if rec["s"] != "t" {
				t.Errorf("instant without thread scope: %v", rec)
			}
		default:
			t.Errorf("unexpected phase %v in %v", rec["ph"], rec)
		}
	}
	if spans != 4 || instants != 6 {
		t.Errorf("spans=%d instants=%d, want 4 and 6", spans, instants)
	}
	// The run-ahead span must sit on the run-ahead track with its cycle
	// count as duration.
	for _, rec := range arr {
		if rec["name"] == "run_ahead" {
			if rec["tid"].(float64) != 1 || rec["dur"].(float64) != 40 || rec["ts"].(float64) != 20 {
				t.Errorf("run_ahead span mis-tracked: %v", rec)
			}
		}
	}
}

func TestEventKindNames(t *testing.T) {
	for k := EvConservative; k <= EvStore; k++ {
		if s := k.String(); s == "" || strings.HasPrefix(s, "EventKind(") {
			t.Errorf("kind %d has no name", k)
		}
	}
	if !strings.HasPrefix(EventKind(200).String(), "EventKind(") {
		t.Error("unknown kind should render as EventKind(n)")
	}
}
