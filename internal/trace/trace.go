// Package trace renders MSABS cycle traces as VCD (Value Change Dump)
// waveforms viewable in GTKWave-class tools, and as CSV for scripted
// analysis. Co-emulation debugging lives and dies by comparing the
// reference and split-system waveforms, so the writers guarantee one
// sample per target cycle with stable signal ordering.
package trace

import (
	"fmt"
	"io"
	"strings"

	"coemu/internal/amba"
)

// signal describes one VCD wire extracted from a CycleState.
type signal struct {
	name  string
	width int
	get   func(amba.CycleState) uint64
}

// signals lists the dumped wires in declaration order.
var signals = []signal{
	{"HADDR", 32, func(c amba.CycleState) uint64 { return uint64(c.AP.Addr) }},
	{"HTRANS", 2, func(c amba.CycleState) uint64 { return uint64(c.AP.Trans) }},
	{"HWRITE", 1, func(c amba.CycleState) uint64 { return b2u(c.AP.Write) }},
	{"HSIZE", 3, func(c amba.CycleState) uint64 { return uint64(c.AP.Size) }},
	{"HBURST", 3, func(c amba.CycleState) uint64 { return uint64(c.AP.Burst) }},
	{"HPROT", 4, func(c amba.CycleState) uint64 { return uint64(c.AP.Prot) }},
	{"HWDATA", 32, func(c amba.CycleState) uint64 { return uint64(c.WData) }},
	{"HRDATA", 32, func(c amba.CycleState) uint64 { return uint64(c.Reply.RData) }},
	{"HRESP", 2, func(c amba.CycleState) uint64 { return uint64(c.Reply.Resp) }},
	{"HREADY", 1, func(c amba.CycleState) uint64 { return b2u(c.Reply.Ready) }},
	{"HBUSREQ", 8, func(c amba.CycleState) uint64 { return uint64(c.Req) }},
	{"HGRANT", 4, func(c amba.CycleState) uint64 { return uint64(c.Grant) }},
	{"IRQ", 8, func(c amba.CycleState) uint64 { return uint64(c.IRQ) }},
}

func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

// idChar returns the VCD identifier for signal index i.
func idChar(i int) string { return string(rune('!' + i)) }

// WriteVCD dumps the trace as a VCD document. timescaleNs is the target
// clock period in nanoseconds (10 for a 100 MHz target, say).
func WriteVCD(w io.Writer, module string, cycles []amba.CycleState, timescaleNs int) error {
	if timescaleNs <= 0 {
		return fmt.Errorf("trace: non-positive timescale %d", timescaleNs)
	}
	var b strings.Builder
	b.WriteString("$date\n  coemu trace\n$end\n")
	b.WriteString("$version\n  coemu VCD writer\n$end\n")
	fmt.Fprintf(&b, "$timescale %dns $end\n", timescaleNs)
	fmt.Fprintf(&b, "$scope module %s $end\n", module)
	for i, s := range signals {
		fmt.Fprintf(&b, "$var wire %d %s %s [%d:0] $end\n", s.width, idChar(i), s.name, s.width-1)
	}
	b.WriteString("$upscope $end\n$enddefinitions $end\n")
	if _, err := io.WriteString(w, b.String()); err != nil {
		return err
	}

	last := make([]uint64, len(signals))
	for cyc, cs := range cycles {
		var body strings.Builder
		fmt.Fprintf(&body, "#%d\n", cyc)
		for i, s := range signals {
			v := s.get(cs)
			if cyc > 0 && v == last[i] {
				continue
			}
			last[i] = v
			if s.width == 1 {
				fmt.Fprintf(&body, "%d%s\n", v&1, idChar(i))
			} else {
				fmt.Fprintf(&body, "b%b %s\n", v, idChar(i))
			}
		}
		if _, err := io.WriteString(w, body.String()); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "#%d\n", len(cycles))
	return err
}

// WriteCSV dumps the trace as CSV with one row per target cycle.
func WriteCSV(w io.Writer, cycles []amba.CycleState) error {
	var cols []string
	cols = append(cols, "cycle")
	for _, s := range signals {
		cols = append(cols, s.name)
	}
	if _, err := fmt.Fprintln(w, strings.Join(cols, ",")); err != nil {
		return err
	}
	for cyc, cs := range cycles {
		row := make([]string, 0, len(signals)+1)
		row = append(row, fmt.Sprintf("%d", cyc))
		for _, s := range signals {
			row = append(row, fmt.Sprintf("0x%x", s.get(cs)))
		}
		if _, err := fmt.Fprintln(w, strings.Join(row, ",")); err != nil {
			return err
		}
	}
	return nil
}

// SignalNames returns the dumped signal names in order.
func SignalNames() []string {
	out := make([]string, len(signals))
	for i, s := range signals {
		out[i] = s.name
	}
	return out
}
