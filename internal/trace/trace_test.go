package trace

import (
	"strings"
	"testing"

	"coemu/internal/amba"
)

func sampleTrace() []amba.CycleState {
	return []amba.CycleState{
		{AP: amba.AddrPhase{Addr: 0x100, Trans: amba.TransNonSeq, Write: true, Size: amba.Size32, Burst: amba.BurstIncr4}, Req: 1, Reply: amba.OkayReady()},
		{AP: amba.AddrPhase{Addr: 0x104, Trans: amba.TransSeq, Write: true, Size: amba.Size32, Burst: amba.BurstIncr4}, Req: 1, WData: 0xAA, Reply: amba.OkayReady()},
		{AP: amba.AddrPhase{Addr: 0x104, Trans: amba.TransSeq, Write: true, Size: amba.Size32, Burst: amba.BurstIncr4}, Req: 1, WData: 0xAA, Reply: amba.SlaveReply{Ready: false}},
	}
}

func TestWriteVCDStructure(t *testing.T) {
	var b strings.Builder
	if err := WriteVCD(&b, "ahb", sampleTrace(), 10); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"$timescale 10ns $end",
		"$scope module ahb $end",
		"HADDR", "HTRANS", "HREADY", "HBUSREQ",
		"$enddefinitions $end",
		"#0", "#1", "#2", "#3",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("VCD missing %q", want)
		}
	}
	// Value-change compression: HADDR changes between #0 and #1 but not
	// between #1 and #2, so exactly two HADDR records must exist.
	haddrID := idChar(0)
	if got := strings.Count(out, " "+haddrID+"\n"); got != 2 {
		t.Errorf("HADDR dumped %d times, want 2", got)
	}
}

func TestWriteVCDBadTimescale(t *testing.T) {
	var b strings.Builder
	if err := WriteVCD(&b, "m", nil, 0); err == nil {
		t.Fatal("zero timescale must fail")
	}
}

func TestWriteCSV(t *testing.T) {
	var b strings.Builder
	if err := WriteCSV(&b, sampleTrace()); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	if len(lines) != 4 {
		t.Fatalf("%d lines, want header + 3", len(lines))
	}
	header := strings.Split(lines[0], ",")
	if header[0] != "cycle" || len(header) != len(SignalNames())+1 {
		t.Fatalf("header %v", header)
	}
	if !strings.HasPrefix(lines[1], "0,0x100,") {
		t.Fatalf("row 1 = %q", lines[1])
	}
}

func TestSignalNamesStable(t *testing.T) {
	names := SignalNames()
	if names[0] != "HADDR" || names[len(names)-1] != "IRQ" {
		t.Fatalf("signal order changed: %v", names)
	}
}
