package vclock

import (
	"testing"
	"time"
)

// TestChargeNMatchesSequentialCharges pins the batch contract: ChargeN
// leaves the ledger bit-identical to n sequential Charges.
func TestChargeNMatchesSequentialCharges(t *testing.T) {
	var seq, batch Ledger
	const d = 137 * time.Nanosecond
	for i := 0; i < 53; i++ {
		seq.Charge(Acc, d)
	}
	batch.ChargeN(Acc, d, 53)
	if seq != batch {
		t.Fatalf("ChargeN diverged: seq %+v, batch %+v", seq, batch)
	}
	if batch.Count(Acc) != 53 || batch.Get(Acc) != 53*d {
		t.Fatalf("ChargeN accounting: count=%d total=%v", batch.Count(Acc), batch.Get(Acc))
	}
}

func TestChargeNPanics(t *testing.T) {
	cases := []struct {
		name string
		f    func(l *Ledger)
	}{
		{"zero-count", func(l *Ledger) { l.ChargeN(Sim, time.Nanosecond, 0) }},
		{"negative-count", func(l *Ledger) { l.ChargeN(Sim, time.Nanosecond, -1) }},
		{"negative-duration", func(l *Ledger) { l.ChargeN(Sim, -time.Nanosecond, 1) }},
		{"bad-category", func(l *Ledger) { l.ChargeN(numCategories, time.Nanosecond, 1) }},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatal("no panic")
				}
			}()
			var l Ledger
			c.f(&l)
		})
	}
}
