// Package vclock provides a virtual wall-clock ledger used to account the
// modeled execution time of a co-emulation session.
//
// The co-emulation engine executes both verification domains in a single
// process; physical time spent by the Go process is irrelevant to the
// experiments. Instead, every modeled activity (a simulator cycle, an
// accelerator cycle, a channel access, a state store or restore) charges
// its modeled duration to a Ledger under a Category. The sum of all
// categories is the virtual wall-clock time the real system would have
// taken, which is what the paper's "simulation performance (cycles/sec)"
// metric divides by.
package vclock

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// Category identifies one of the cost buckets from the paper's Table 2.
type Category uint8

// Cost categories. They correspond one-to-one to the rows of the paper's
// Table 2: Tsim, Tacc, Tstore, Trestore and Tch.
const (
	// Sim is time spent by the software simulator evaluating target cycles.
	Sim Category = iota
	// Acc is time spent by the hardware accelerator evaluating target cycles.
	Acc
	// Store is time spent storing leader state for possible rollback.
	Store
	// Restore is time spent restoring leader state after a misprediction.
	Restore
	// Channel is time spent on the simulator-accelerator channel,
	// including per-access startup overhead and per-word payload time.
	Channel
	numCategories
)

// String returns the Table 2 row name for the category.
func (c Category) String() string {
	switch c {
	case Sim:
		return "Tsim"
	case Acc:
		return "Tacc"
	case Store:
		return "Tstore"
	case Restore:
		return "Trestore"
	case Channel:
		return "Tch"
	default:
		return fmt.Sprintf("Category(%d)", uint8(c))
	}
}

// Categories lists all valid categories in Table 2 order.
func Categories() []Category {
	return []Category{Sim, Acc, Store, Restore, Channel}
}

// Ledger accumulates modeled time per category. The zero value is an
// empty ledger ready for use. Ledger is not safe for concurrent use on
// the SAME category: each category's bucket and count are separate
// memory words, so the engine's parallel cycle loop may charge
// different categories from different goroutines (each domain charges
// only its own category, and store/restore/channel charges stay on the
// coordinating goroutine), but two goroutines must never charge one
// category concurrently. Totals are order-independent sums either way.
type Ledger struct {
	buckets [numCategories]time.Duration
	charges [numCategories]int64
}

// Charge adds d of modeled time to category c. Negative durations panic:
// virtual time never runs backwards, and a negative charge always
// indicates a bug in a cost model.
func (l *Ledger) Charge(c Category, d time.Duration) {
	l.ChargeN(c, d, 1)
}

// ChargeN adds n identical charges of d to category c in one call. It
// is the batch counterpart of Charge used by the engine's
// predicted-quiescence fast path: the resulting buckets and charge
// counts are bit-identical to n sequential Charge calls (duration
// arithmetic is exact integer math), at O(1) instead of O(n) cost.
// Non-positive n panics: a zero-cycle batch indicates a bug in the
// caller's batch sizing.
func (l *Ledger) ChargeN(c Category, d time.Duration, n int64) {
	if n <= 0 {
		panic(fmt.Sprintf("vclock: non-positive batch charge count %d to %v", n, c))
	}
	if d < 0 {
		panic(fmt.Sprintf("vclock: negative charge %v to %v", d, c))
	}
	if c >= numCategories {
		panic(fmt.Sprintf("vclock: invalid category %d", c))
	}
	l.buckets[c] += time.Duration(n) * d
	l.charges[c] += n
}

// Get returns the accumulated time in category c.
func (l *Ledger) Get(c Category) time.Duration {
	if c >= numCategories {
		panic(fmt.Sprintf("vclock: invalid category %d", c))
	}
	return l.buckets[c]
}

// Count returns how many individual charges were made to category c.
func (l *Ledger) Count(c Category) int64 {
	if c >= numCategories {
		panic(fmt.Sprintf("vclock: invalid category %d", c))
	}
	return l.charges[c]
}

// Total returns the virtual wall-clock time: the sum over all categories.
// The two domains and the channel are modeled as mutually exclusive in
// time (the paper's model makes the same serialization assumption), so
// the total is a plain sum.
func (l *Ledger) Total() time.Duration {
	var t time.Duration
	for _, b := range l.buckets {
		t += b
	}
	return t
}

// Reset zeroes every bucket.
func (l *Ledger) Reset() {
	*l = Ledger{}
}

// Snapshot returns a copy of the ledger, used to roll cost accounting
// forward through engine checkpoints without aliasing.
func (l *Ledger) Snapshot() Ledger {
	return *l
}

// AddFrom accumulates every bucket of other into l.
func (l *Ledger) AddFrom(other *Ledger) {
	for i := range l.buckets {
		l.buckets[i] += other.buckets[i]
		l.charges[i] += other.charges[i]
	}
}

// PerCycle reports the average modeled time per target cycle for category
// c given that cycles target cycles were committed. It returns 0 when
// cycles is 0.
func (l *Ledger) PerCycle(c Category, cycles int64) time.Duration {
	if cycles <= 0 {
		return 0
	}
	return l.Get(c) / time.Duration(cycles)
}

// CyclesPerSecond converts the ledger into the paper's headline metric:
// committed target cycles divided by total virtual time, in cycles/sec.
func (l *Ledger) CyclesPerSecond(cycles int64) float64 {
	tot := l.Total()
	if tot <= 0 {
		return 0
	}
	return float64(cycles) / tot.Seconds()
}

// String renders the ledger as a compact table, categories in Table 2
// order, for logs and debug output.
func (l *Ledger) String() string {
	var b strings.Builder
	cats := Categories()
	sort.Slice(cats, func(i, j int) bool { return cats[i] < cats[j] })
	for i, c := range cats {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%s=%v", c, l.buckets[c])
	}
	fmt.Fprintf(&b, " total=%v", l.Total())
	return b.String()
}
