package vclock

import (
	"strings"
	"testing"
	"time"
)

func TestLedgerChargeAndTotal(t *testing.T) {
	var l Ledger
	l.Charge(Sim, 3*time.Microsecond)
	l.Charge(Acc, time.Microsecond)
	l.Charge(Channel, 2*time.Microsecond)
	l.Charge(Sim, time.Microsecond)
	if got := l.Get(Sim); got != 4*time.Microsecond {
		t.Errorf("Sim = %v", got)
	}
	if got := l.Total(); got != 7*time.Microsecond {
		t.Errorf("Total = %v", got)
	}
	if got := l.Count(Sim); got != 2 {
		t.Errorf("Count(Sim) = %d", got)
	}
	if got := l.Count(Restore); got != 0 {
		t.Errorf("Count(Restore) = %d", got)
	}
}

func TestLedgerNegativeChargePanics(t *testing.T) {
	var l Ledger
	defer func() {
		if recover() == nil {
			t.Fatal("negative charge must panic")
		}
	}()
	l.Charge(Sim, -1)
}

func TestLedgerInvalidCategoryPanics(t *testing.T) {
	var l Ledger
	defer func() {
		if recover() == nil {
			t.Fatal("invalid category must panic")
		}
	}()
	l.Charge(Category(99), time.Second)
}

func TestLedgerPerCycleAndPerf(t *testing.T) {
	var l Ledger
	l.Charge(Sim, 10*time.Microsecond)
	if got := l.PerCycle(Sim, 10); got != time.Microsecond {
		t.Errorf("PerCycle = %v", got)
	}
	if got := l.PerCycle(Sim, 0); got != 0 {
		t.Errorf("PerCycle(0 cycles) = %v", got)
	}
	// 10 cycles in 10 µs = 1 Mcycles/s.
	if got := l.CyclesPerSecond(10); got < 0.99e6 || got > 1.01e6 {
		t.Errorf("CyclesPerSecond = %g", got)
	}
	var empty Ledger
	if empty.CyclesPerSecond(5) != 0 {
		t.Error("empty ledger must report 0 perf")
	}
}

func TestLedgerResetSnapshotAddFrom(t *testing.T) {
	var l Ledger
	l.Charge(Acc, time.Second)
	snap := l.Snapshot()
	l.Charge(Acc, time.Second)
	if snap.Get(Acc) != time.Second {
		t.Error("snapshot aliased the ledger")
	}
	var m Ledger
	m.Charge(Store, time.Millisecond)
	l.AddFrom(&m)
	if l.Get(Store) != time.Millisecond {
		t.Error("AddFrom missed Store")
	}
	l.Reset()
	if l.Total() != 0 {
		t.Error("Reset left residue")
	}
}

func TestCategoryStrings(t *testing.T) {
	want := map[Category]string{Sim: "Tsim", Acc: "Tacc", Store: "Tstore", Restore: "Trestore", Channel: "Tch"}
	for c, s := range want {
		if c.String() != s {
			t.Errorf("%d.String() = %q, want %q", c, c.String(), s)
		}
	}
	if len(Categories()) != 5 {
		t.Error("Categories() must list 5 entries")
	}
	if !strings.Contains(Category(42).String(), "42") {
		t.Error("unknown category string")
	}
}

func TestLedgerString(t *testing.T) {
	var l Ledger
	l.Charge(Channel, time.Microsecond)
	s := l.String()
	if !strings.Contains(s, "Tch=1µs") && !strings.Contains(s, "Tch=1") {
		t.Errorf("String() = %q", s)
	}
	if !strings.Contains(s, "total=") {
		t.Errorf("String() = %q", s)
	}
}
