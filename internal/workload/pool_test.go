package workload

import (
	"testing"

	"coemu/internal/amba"
)

// Tests for the generator-owned data pool: recycled per-burst Data
// slices must never change contents under a live reference (the
// master's current transfer or the rollback snapshot), and a
// save/restore/replay cycle must regenerate bit-identical data.

func poolStream() *Stream {
	return NewStream(Window{Lo: 0, Hi: 0x10000}, true, amba.BurstIncr8, amba.Size32, 0, 0, 0)
}

func cloneWords(w []amba.Word) []amba.Word {
	out := make([]amba.Word, len(w))
	copy(out, w)
	return out
}

func TestStreamPoolSnapshotPinsLiveSlice(t *testing.T) {
	s := poolStream()
	for i := 0; i < 4; i++ {
		if _, ok := s.Next(); !ok {
			t.Fatal("stream ended")
		}
	}
	// cur models the master's active transfer at snapshot time: its Data
	// slice must survive arbitrarily many post-snapshot fetches.
	cur, _ := s.Next()
	golden := cloneWords(cur.Data)
	snap := s.SaveInto(nil)

	var replayGolden [][]amba.Word
	for i := 0; i < 40; i++ {
		x, _ := s.Next()
		replayGolden = append(replayGolden, cloneWords(x.Data))
	}
	for i, w := range cur.Data {
		if w != golden[i] {
			t.Fatalf("snapshot-pinned slice overwritten at beat %d: %#x != %#x", i, w, golden[i])
		}
	}

	// Roll back and replay: contents must be bit-identical to the first
	// pass even though the pool may hand out different buffers.
	s.Restore(snap)
	for i := range replayGolden {
		x, _ := s.Next()
		if len(x.Data) != len(replayGolden[i]) {
			t.Fatalf("replay %d: %d beats, want %d", i, len(x.Data), len(replayGolden[i]))
		}
		for j := range x.Data {
			if x.Data[j] != replayGolden[i][j] {
				t.Fatalf("replay %d beat %d: %#x != %#x", i, j, x.Data[j], replayGolden[i][j])
			}
		}
	}
}

func TestStreamPoolBounded(t *testing.T) {
	s := poolStream()
	var snap any
	for i := 0; i < 10000; i++ {
		if i%50 == 0 {
			snap = s.SaveInto(snap)
		}
		if _, ok := s.Next(); !ok {
			t.Fatal("stream ended")
		}
	}
	if n := len(s.pool.out) + len(s.pool.free); n > 64 {
		t.Fatalf("pool holds %d buffers after 10k transfers, want a small bound", n)
	}
}

func TestStreamNextAllocFree(t *testing.T) {
	s := poolStream()
	var snap any
	// Engine-shaped consumption: a snapshot every few transfers, an
	// occasional rollback, continuous fetching in between.
	step := func() {
		snap = s.SaveInto(snap)
		for i := 0; i < 5; i++ {
			if _, ok := s.Next(); !ok {
				t.Fatal("stream ended")
			}
		}
		s.Restore(snap)
		for i := 0; i < 7; i++ {
			if _, ok := s.Next(); !ok {
				t.Fatal("stream ended")
			}
		}
	}
	for i := 0; i < 100; i++ {
		step()
	}
	if allocs := testing.AllocsPerRun(20, step); allocs != 0 {
		t.Fatalf("steady-state Stream.Next allocated %.1f objects per save/fetch/restore round, want 0", allocs)
	}
}

func TestDMACopyNextAllocFree(t *testing.T) {
	d := NewDMACopy(Window{Lo: 0, Hi: 0x4000}, Window{Lo: 0x8000, Hi: 0xC000}, amba.BurstIncr8, 0, 0)
	var snap any
	step := func() {
		snap = d.SaveInto(snap)
		for i := 0; i < 6; i++ {
			if _, ok := d.Next(); !ok {
				t.Fatal("dma ended")
			}
		}
		d.Restore(snap)
		for i := 0; i < 8; i++ {
			if _, ok := d.Next(); !ok {
				t.Fatal("dma ended")
			}
		}
	}
	for i := 0; i < 100; i++ {
		step()
	}
	if allocs := testing.AllocsPerRun(20, step); allocs != 0 {
		t.Fatalf("steady-state DMACopy.Next allocated %.1f objects per round, want 0", allocs)
	}
}

func TestDMACopyPoolRollbackIdentity(t *testing.T) {
	d := NewDMACopy(Window{Lo: 0, Hi: 0x4000}, Window{Lo: 0x8000, Hi: 0xC000}, amba.BurstIncr4, 0, 0)
	for i := 0; i < 7; i++ {
		d.Next()
	}
	snap := d.SaveInto(nil)
	var golden [][]amba.Word
	for i := 0; i < 30; i++ {
		x, _ := d.Next()
		golden = append(golden, cloneWords(x.Data))
	}
	d.Restore(snap)
	for i := range golden {
		x, _ := d.Next()
		if len(x.Data) != len(golden[i]) {
			t.Fatalf("replay %d: beat count %d != %d", i, len(x.Data), len(golden[i]))
		}
		for j := range x.Data {
			if x.Data[j] != golden[i][j] {
				t.Fatalf("replay %d beat %d: %#x != %#x", i, j, x.Data[j], golden[i][j])
			}
		}
	}
}
