package workload

import (
	"fmt"
	"strconv"
	"strings"

	"coemu/internal/amba"
	"coemu/internal/ip"
)

// ParseScript compiles a textual transfer script into a Sequence
// generator. The format is line-oriented:
//
//	# comment (also after ';')
//	W <addr> <burst> <bits> [len=N] [gap=N] [data=v,v,...]
//	R <addr> <burst> <bits> [len=N] [gap=N]
//
// where burst is SINGLE, INCR, WRAP4/8/16 or INCR4/8/16 and bits is the
// transfer width (8, 16 or 32). Addresses and data accept decimal or
// 0x-prefixed hex. Writes without data= use an incrementing pattern.
//
// Example:
//
//	# fill a frame, read it back
//	W 0x1000 INCR8 32 data=0xaa,0xbb,0xcc,0xdd,1,2,3,4
//	R 0x1000 INCR8 32 gap=2
//	W 0x2002 SINGLE 16 data=0x1234
func ParseScript(src string) (*Sequence, error) {
	var xfers []ip.Xfer
	for ln, raw := range strings.Split(src, "\n") {
		line := raw
		if i := strings.IndexAny(line, "#;"); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		x, err := parseLine(line)
		if err != nil {
			return nil, fmt.Errorf("workload: script line %d: %w", ln+1, err)
		}
		xfers = append(xfers, x)
	}
	if len(xfers) == 0 {
		return nil, fmt.Errorf("workload: script contains no transfers")
	}
	return NewSequence(xfers...), nil
}

// burstNames maps mnemonic to encoding.
var burstNames = map[string]amba.Burst{
	"SINGLE": amba.BurstSingle,
	"INCR":   amba.BurstIncr,
	"WRAP4":  amba.BurstWrap4,
	"INCR4":  amba.BurstIncr4,
	"WRAP8":  amba.BurstWrap8,
	"INCR8":  amba.BurstIncr8,
	"WRAP16": amba.BurstWrap16,
	"INCR16": amba.BurstIncr16,
}

// ParseBurst resolves a burst mnemonic (SINGLE, INCR, WRAP4/8/16,
// INCR4/8/16; case-insensitive) to its HBURST encoding.
func ParseBurst(name string) (amba.Burst, bool) {
	b, ok := burstNames[strings.ToUpper(strings.TrimSpace(name))]
	return b, ok
}

// ParseSizeBits resolves a transfer width in bits (8, 16 or 32) to its
// HSIZE encoding.
func ParseSizeBits(bits int) (amba.Size, bool) {
	switch bits {
	case 8:
		return amba.Size8, true
	case 16:
		return amba.Size16, true
	case 32:
		return amba.Size32, true
	default:
		return 0, false
	}
}

// sizeBits maps width in bits to encoding.
var sizeBits = map[string]amba.Size{
	"8": amba.Size8, "16": amba.Size16, "32": amba.Size32,
}

func parseLine(line string) (ip.Xfer, error) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return ip.Xfer{}, fmt.Errorf("want '<R|W> <addr> <burst> <bits> [opts]', got %q", line)
	}
	var x ip.Xfer
	switch strings.ToUpper(fields[0]) {
	case "W":
		x.Write = true
	case "R":
		x.Write = false
	default:
		return ip.Xfer{}, fmt.Errorf("direction %q (want R or W)", fields[0])
	}
	addr, err := parseNum(fields[1])
	if err != nil {
		return ip.Xfer{}, fmt.Errorf("address: %w", err)
	}
	x.Addr = amba.Addr(addr)
	burst, ok := burstNames[strings.ToUpper(fields[2])]
	if !ok {
		return ip.Xfer{}, fmt.Errorf("unknown burst %q", fields[2])
	}
	x.Burst = burst
	size, ok := sizeBits[fields[3]]
	if !ok {
		return ip.Xfer{}, fmt.Errorf("unsupported width %q (want 8, 16 or 32)", fields[3])
	}
	x.Size = size

	for _, opt := range fields[4:] {
		k, v, found := strings.Cut(opt, "=")
		if !found {
			return ip.Xfer{}, fmt.Errorf("malformed option %q", opt)
		}
		switch strings.ToLower(k) {
		case "len":
			n, err := parseNum(v)
			if err != nil {
				return ip.Xfer{}, fmt.Errorf("len: %w", err)
			}
			x.Len = int(n)
		case "gap":
			n, err := parseNum(v)
			if err != nil {
				return ip.Xfer{}, fmt.Errorf("gap: %w", err)
			}
			x.Gap = int(n)
		case "data":
			for _, s := range strings.Split(v, ",") {
				n, err := parseNum(s)
				if err != nil {
					return ip.Xfer{}, fmt.Errorf("data: %w", err)
				}
				x.Data = append(x.Data, amba.Word(n))
			}
		default:
			return ip.Xfer{}, fmt.Errorf("unknown option %q", k)
		}
	}

	if !amba.Aligned(x.Addr, x.Size) {
		return ip.Xfer{}, fmt.Errorf("address %#x unaligned for %d-bit transfers", uint32(x.Addr), x.Size.Bytes()*8)
	}
	if x.Burst == amba.BurstIncr && x.Len == 0 {
		return ip.Xfer{}, fmt.Errorf("INCR burst requires len=")
	}
	beats := x.Beats()
	if x.Write {
		if x.Data == nil {
			x.Data = make([]amba.Word, beats)
			for i := range x.Data {
				x.Data[i] = amba.Word(i + 1)
			}
		}
		if len(x.Data) != beats {
			return ip.Xfer{}, fmt.Errorf("%d data words for %d beats", len(x.Data), beats)
		}
	} else if x.Data != nil {
		return ip.Xfer{}, fmt.Errorf("read transfers take no data")
	}
	return x, nil
}

func parseNum(s string) (uint64, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return 0, fmt.Errorf("empty number")
	}
	return strconv.ParseUint(strings.TrimPrefix(strings.ToLower(s), "0x"), base(s), 64)
}

func base(s string) int {
	if strings.HasPrefix(strings.ToLower(strings.TrimSpace(s)), "0x") {
		return 16
	}
	return 10
}
