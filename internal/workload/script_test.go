package workload

import (
	"strings"
	"testing"

	"coemu/internal/amba"
)

func TestParseScriptBasics(t *testing.T) {
	src := `
# a comment
W 0x1000 INCR8 32 data=1,2,3,4,5,6,7,8
R 0x1000 INCR8 32 gap=2   ; trailing comment
W 0x2002 SINGLE 16 data=0x1234
R 0x3000 WRAP4 32
W 0x4000 INCR 32 len=3
`
	gen, err := ParseScript(src)
	if err != nil {
		t.Fatal(err)
	}
	xs := drain(gen, 100)
	if len(xs) != 5 {
		t.Fatalf("%d transfers", len(xs))
	}
	if !xs[0].Write || xs[0].Addr != 0x1000 || xs[0].Burst != amba.BurstIncr8 || xs[0].Data[7] != 8 {
		t.Fatalf("xfer 0 = %+v", xs[0])
	}
	if xs[1].Write || xs[1].Gap != 2 {
		t.Fatalf("xfer 1 = %+v", xs[1])
	}
	if xs[2].Size != amba.Size16 || xs[2].Data[0] != 0x1234 {
		t.Fatalf("xfer 2 = %+v", xs[2])
	}
	if xs[3].Burst != amba.BurstWrap4 || xs[3].Data != nil {
		t.Fatalf("xfer 3 = %+v", xs[3])
	}
	// INCR len=3 write without data gets the default pattern.
	if xs[4].Len != 3 || len(xs[4].Data) != 3 || xs[4].Data[2] != 3 {
		t.Fatalf("xfer 4 = %+v", xs[4])
	}
}

func TestParseScriptErrors(t *testing.T) {
	cases := []struct {
		src  string
		want string
	}{
		{"", "no transfers"},
		{"X 0 SINGLE 32", "direction"},
		{"W zzz SINGLE 32", "address"},
		{"W 0 BONK 32", "unknown burst"},
		{"W 0 SINGLE 64", "unsupported width"},
		{"W 0x1002 SINGLE 32", "unaligned"},
		{"W 0 INCR 32", "requires len"},
		{"W 0 SINGLE 32 data=1,2", "data words"},
		{"R 0 SINGLE 32 data=1", "no data"},
		{"W 0 SINGLE 32 bogus=1", "unknown option"},
		{"W 0 SINGLE 32 gap", "malformed option"},
		{"W 0 SINGLE", "want '<R|W>"},
		{"W 0 SINGLE 32 len=x", "len"},
	}
	for _, c := range cases {
		_, err := ParseScript(c.src)
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("ParseScript(%q) err = %v, want contains %q", c.src, err, c.want)
		}
	}
}

func TestParseScriptLineNumbers(t *testing.T) {
	_, err := ParseScript("W 0 SINGLE 32\n\nR 0 BONK 32\n")
	if err == nil || !strings.Contains(err.Error(), "line 3") {
		t.Fatalf("err = %v, want line 3", err)
	}
}
