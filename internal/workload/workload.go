// Package workload provides deterministic traffic generators that feed
// ip.TrafficMaster instances: pre-scripted sequences, streaming bursts
// (the highly predictable traffic the paper's scheme thrives on),
// DMA-style copy loops, and CPU-like randomized access patterns (the
// traffic that stresses arbitration prediction).
//
// Every generator is snapshotable so it can live inside a leader domain.
package workload

import (
	"fmt"

	"coemu/internal/amba"
	"coemu/internal/ip"
	"coemu/internal/rng"
)

// Window is a half-open address window [Lo, Hi) a generator draws
// addresses from.
type Window struct {
	Lo, Hi amba.Addr
}

// Span returns the window size in bytes.
func (w Window) Span() amba.Addr { return w.Hi - w.Lo }

// pattern produces the deterministic data word for beat counter n.
func pattern(n uint64) amba.Word {
	x := n*0x9E3779B97F4A7C15 + 0x7F4A7C15
	return amba.Word(x>>32) ^ amba.Word(x)
}

// dataPool recycles the per-burst Data slices a write generator hands
// to its master, removing the last generator-owned allocation from the
// engine's steady-state loop while staying rollback-safe.
//
// Safety argument. A slice issued for transfer q is referenced by (at
// most) the master's current activeXfer — the master drops transfer q
// the moment it fetches q+1 — and by the domain's single live rollback
// snapshot, which holds a value copy of the master state as of the last
// Save (referencing transfer snapSeq-1 at the oldest). So any slice
// whose transfer index is holdDepth fetches below BOTH the current
// issue counter and the last save point is unreachable and free to
// recycle. A Restore rewinds the issue counter to the save point;
// slices issued after it became unreachable with the rolled-back
// master state (the registry restores the whole domain atomically
// between cycles) and return to the free list — the roll-forth replay
// regenerates their transfers, with bit-identical contents since the
// data is a pure function of the snapshotted beat counter.
type dataPool struct {
	free [][]amba.Word
	out  []pooledBuf // outstanding slices, oldest first
	// snapSeq is the generator's issue counter at the last Save;
	// hasSnap marks that a restorable snapshot exists. The zero value
	// is a ready-to-use pool with no snapshot.
	snapSeq int64
	hasSnap bool
}

// pooledBuf is one outstanding slice tagged with its transfer index.
type pooledBuf struct {
	seq int64
	buf []amba.Word
}

// holdDepth is how many fetches below the low-water mark a slice must
// be before recycling. 1 suffices (only the most recent fetch is live);
// 2 leaves a margin.
const holdDepth = 2

// get returns a slice of n words for the transfer with issue index seq,
// recycling retired buffers. The contents are unspecified; the caller
// overwrites every word.
func (p *dataPool) get(seq int64, n int) []amba.Word {
	p.reclaim(seq)
	var buf []amba.Word
	if k := len(p.free); k > 0 {
		buf = p.free[k-1]
		p.free[k-1] = nil
		p.free = p.free[:k-1]
	}
	if cap(buf) < n {
		buf = make([]amba.Word, n)
	}
	buf = buf[:n]
	p.out = append(p.out, pooledBuf{seq: seq, buf: buf})
	return buf
}

// reclaim moves every provably-unreachable outstanding slice to the
// free list. cur is the generator's current issue counter.
func (p *dataPool) reclaim(cur int64) {
	low := cur
	if p.hasSnap && p.snapSeq < low {
		low = p.snapSeq
	}
	n := 0
	for n < len(p.out) && p.out[n].seq < low-holdDepth {
		p.free = append(p.free, p.out[n].buf)
		p.out[n].buf = nil
		n++
	}
	if n > 0 {
		rest := copy(p.out, p.out[n:])
		for i := rest; i < len(p.out); i++ {
			p.out[i] = pooledBuf{}
		}
		p.out = p.out[:rest]
	}
}

// saved records a snapshot at issue counter cur: slices at or above
// cur-holdDepth stay pinned until the next save supersedes it.
func (p *dataPool) saved(cur int64) { p.snapSeq, p.hasSnap = cur, true }

// restored rewinds to issue counter cur (the last save point): slices
// issued at or after cur belong to rolled-back transfers and recycle
// immediately.
func (p *dataPool) restored(cur int64) {
	p.snapSeq = cur
	for len(p.out) > 0 {
		last := len(p.out) - 1
		if p.out[last].seq < cur {
			break
		}
		p.free = append(p.free, p.out[last].buf)
		p.out[last] = pooledBuf{}
		p.out = p.out[:last]
	}
}

// Sequence replays a fixed list of transfers, for tests and examples.
type Sequence struct {
	xfers []ip.Xfer
	i     int
}

var _ ip.Generator = (*Sequence)(nil)

// NewSequence creates a generator that emits the given transfers in
// order, then ends.
func NewSequence(xfers ...ip.Xfer) *Sequence { return &Sequence{xfers: xfers} }

// Next implements ip.Generator.
func (s *Sequence) Next() (ip.Xfer, bool) {
	if s.i >= len(s.xfers) {
		return ip.Xfer{}, false
	}
	x := s.xfers[s.i]
	s.i++
	return x, true
}

// Save implements rollback.Snapshotter.
func (s *Sequence) Save() any { return s.i }

// Restore implements rollback.Snapshotter.
func (s *Sequence) Restore(v any) {
	i, ok := v.(int)
	if !ok {
		panic(fmt.Sprintf("workload: sequence: bad snapshot %T", v))
	}
	s.i = i
}

// Stream emits an endless (or bounded) run of same-direction bursts
// marching through an address window — the unidirectional, linearly
// addressed traffic for which the paper's address/control prediction is
// exact. A write stream makes the master's domain the natural leader; a
// read stream makes the slave's domain the leader.
type Stream struct {
	win   Window
	write bool
	burst amba.Burst
	size  amba.Size
	len   int // beats for INCR
	gap   int
	max   int64 // 0 = unbounded

	st    streamState
	pool  dataPool
	saved streamState // compare-on-save dirty tracking
	clean bool
}

type streamState struct {
	Cursor amba.Addr
	Beat   uint64
	Issued int64
}

var _ ip.Generator = (*Stream)(nil)

// NewStream creates a streaming generator. max bounds the number of
// transfers (0 = unbounded). gap inserts idle cycles between transfers.
func NewStream(win Window, write bool, burst amba.Burst, size amba.Size, incrLen, gap int, max int64) *Stream {
	if win.Span() == 0 {
		panic("workload: empty stream window")
	}
	return &Stream{
		win: win, write: write, burst: burst, size: size, len: incrLen, gap: gap, max: max,
		st: streamState{Cursor: win.Lo},
	}
}

// Next implements ip.Generator.
func (s *Stream) Next() (ip.Xfer, bool) {
	if s.max > 0 && s.st.Issued >= s.max {
		return ip.Xfer{}, false
	}
	x := ip.Xfer{
		Addr:  s.st.Cursor,
		Write: s.write,
		Size:  s.size,
		Burst: s.burst,
		Len:   s.len,
		Gap:   s.gap,
	}
	beats := x.Beats()
	if s.write {
		x.Data = s.pool.get(s.st.Issued, beats)
		for i := range x.Data {
			x.Data[i] = pattern(s.st.Beat + uint64(i))
		}
	}
	s.st.Beat += uint64(beats)
	span := amba.Addr(beats * s.size.Bytes())
	s.st.Cursor += span
	if s.st.Cursor+span > s.win.Hi {
		s.st.Cursor = s.win.Lo
	}
	s.st.Issued++
	return x, true
}

// Save implements rollback.Snapshotter.
func (s *Stream) Save() any { return s.SaveInto(nil) }

// SaveInto implements rollback.InPlaceSnapshotter, recycling prev when
// it came from an earlier Save/SaveInto of a stream.
func (s *Stream) SaveInto(prev any) any {
	st, ok := prev.(*streamState)
	if !ok {
		st = new(streamState)
	}
	*st = s.st
	s.pool.saved(s.st.Issued)
	return st
}

// Restore implements rollback.Snapshotter.
func (s *Stream) Restore(v any) {
	st, ok := v.(*streamState)
	if !ok {
		panic(fmt.Sprintf("workload: stream: bad snapshot %T", v))
	}
	s.st = *st
	s.pool.restored(s.st.Issued)
}

// Dirty implements rollback.DeltaSnapshotter: the stream changed iff a
// transfer was issued since the last MarkClean.
func (s *Stream) Dirty() bool { return !s.clean || s.st != s.saved }

// MarkClean implements rollback.DeltaSnapshotter.
func (s *Stream) MarkClean() {
	s.saved = s.st
	s.clean = true
}

// SaveDelta implements rollback.DeltaSnapshotter; the cursor triple is
// small, so deltas are self-contained copies.
func (s *Stream) SaveDelta(prev any) any { return s.SaveInto(prev) }

// RestoreDelta implements rollback.DeltaSnapshotter: delta records
// are restorable as-is (newest-only, which the registry enforces).
func (s *Stream) RestoreDelta(newest any) { s.Restore(newest) }

// DMACopy alternates read bursts from a source window with write bursts
// of the same data... of a deterministic pattern into a destination
// window, modeling a DMA engine moving a frame between memories.
type DMACopy struct {
	src, dst Window
	burst    amba.Burst
	gap      int
	max      int64

	st    dmaState
	pool  dataPool
	saved dmaState // compare-on-save dirty tracking
	clean bool
}

type dmaState struct {
	SrcCur  amba.Addr
	DstCur  amba.Addr
	Beat    uint64
	Issued  int64
	WriteNx bool
}

var _ ip.Generator = (*DMACopy)(nil)

// NewDMACopy creates a DMA copy generator issuing bursts of the given
// type, alternating read-from-src and write-to-dst.
func NewDMACopy(src, dst Window, burst amba.Burst, gap int, max int64) *DMACopy {
	if burst.Beats() == 0 {
		panic("workload: DMA requires a fixed-length burst")
	}
	return &DMACopy{src: src, dst: dst, burst: burst, gap: gap, max: max,
		st: dmaState{SrcCur: src.Lo, DstCur: dst.Lo}}
}

// Next implements ip.Generator.
func (d *DMACopy) Next() (ip.Xfer, bool) {
	if d.max > 0 && d.st.Issued >= d.max {
		return ip.Xfer{}, false
	}
	beats := d.burst.Beats()
	span := amba.Addr(beats * 4)
	var x ip.Xfer
	if d.st.WriteNx {
		x = ip.Xfer{Addr: d.st.DstCur, Write: true, Size: amba.Size32, Burst: d.burst, Gap: d.gap}
		x.Data = d.pool.get(d.st.Issued, beats)
		for i := range x.Data {
			x.Data[i] = pattern(d.st.Beat + uint64(i))
		}
		d.st.Beat += uint64(beats)
		d.st.DstCur += span
		if d.st.DstCur+span > d.dst.Hi {
			d.st.DstCur = d.dst.Lo
		}
	} else {
		x = ip.Xfer{Addr: d.st.SrcCur, Write: false, Size: amba.Size32, Burst: d.burst, Gap: d.gap}
		d.st.SrcCur += span
		if d.st.SrcCur+span > d.src.Hi {
			d.st.SrcCur = d.src.Lo
		}
	}
	d.st.WriteNx = !d.st.WriteNx
	d.st.Issued++
	return x, true
}

// Save implements rollback.Snapshotter.
func (d *DMACopy) Save() any { return d.SaveInto(nil) }

// SaveInto implements rollback.InPlaceSnapshotter, recycling prev when
// it came from an earlier Save/SaveInto of a DMA generator.
func (d *DMACopy) SaveInto(prev any) any {
	st, ok := prev.(*dmaState)
	if !ok {
		st = new(dmaState)
	}
	*st = d.st
	d.pool.saved(d.st.Issued)
	return st
}

// Restore implements rollback.Snapshotter.
func (d *DMACopy) Restore(v any) {
	st, ok := v.(*dmaState)
	if !ok {
		panic(fmt.Sprintf("workload: dma: bad snapshot %T", v))
	}
	d.st = *st
	d.pool.restored(d.st.Issued)
}

// Dirty implements rollback.DeltaSnapshotter.
func (d *DMACopy) Dirty() bool { return !d.clean || d.st != d.saved }

// MarkClean implements rollback.DeltaSnapshotter.
func (d *DMACopy) MarkClean() {
	d.saved = d.st
	d.clean = true
}

// SaveDelta implements rollback.DeltaSnapshotter; the cursor state is
// small, so deltas are self-contained copies.
func (d *DMACopy) SaveDelta(prev any) any { return d.SaveInto(prev) }

// RestoreDelta implements rollback.DeltaSnapshotter: delta records
// are restorable as-is (newest-only, which the registry enforces).
func (d *DMACopy) RestoreDelta(newest any) { d.Restore(newest) }

// CPU emits randomized single transfers and short bursts across a set of
// windows with random idle gaps — the bursty, direction-mixed traffic
// that makes arbitration and data-direction flips frequent.
type CPU struct {
	windows    []Window
	writeRatio float64
	maxGap     int
	max        int64
	r          *rng.Source

	issued int64
	beat   uint64
	pool   dataPool
}

var _ ip.Generator = (*CPU)(nil)

// NewCPU creates a randomized generator over the given windows.
func NewCPU(windows []Window, writeRatio float64, maxGap int, max int64, seed uint64) *CPU {
	if len(windows) == 0 {
		panic("workload: CPU needs at least one window")
	}
	return &CPU{windows: windows, writeRatio: writeRatio, maxGap: maxGap, max: max, r: rng.New(seed)}
}

// Next implements ip.Generator.
func (c *CPU) Next() (ip.Xfer, bool) {
	if c.max > 0 && c.issued >= c.max {
		return ip.Xfer{}, false
	}
	w := c.windows[c.r.Intn(len(c.windows))]
	bursts := []amba.Burst{amba.BurstSingle, amba.BurstSingle, amba.BurstIncr4, amba.BurstWrap4, amba.BurstIncr8}
	b := bursts[c.r.Intn(len(bursts))]
	beats := b.Beats()
	span := amba.Addr(beats * 4)
	if w.Span() < span+span {
		b = amba.BurstSingle
		beats = 1
		span = 4
	}
	slots := int((w.Span() - span) / 4)
	addr := w.Lo
	if slots > 0 {
		addr += amba.Addr(c.r.Intn(slots)) * 4
	}
	if b.Wrapping() {
		// Wrap bursts still need lane alignment only; any word-aligned
		// start is legal.
		_ = addr
	}
	x := ip.Xfer{
		Addr:  addr,
		Write: c.r.Bool(c.writeRatio),
		Size:  amba.Size32,
		Burst: b,
		Gap:   0,
	}
	if c.maxGap > 0 {
		x.Gap = c.r.Intn(c.maxGap + 1)
	}
	if x.Write {
		x.Data = c.pool.get(c.issued, beats)
		for i := range x.Data {
			x.Data[i] = pattern(c.beat + uint64(i))
		}
	}
	c.beat += uint64(beats)
	c.issued++
	return x, true
}

// cpuSnap freezes a CPU generator.
type cpuSnap struct {
	Rng    any
	Issued int64
	Beat   uint64
}

// Save implements rollback.Snapshotter.
func (c *CPU) Save() any {
	c.pool.saved(c.issued)
	return cpuSnap{Rng: c.r.Save(), Issued: c.issued, Beat: c.beat}
}

// Restore implements rollback.Snapshotter.
func (c *CPU) Restore(v any) {
	s, ok := v.(cpuSnap)
	if !ok {
		panic(fmt.Sprintf("workload: cpu: bad snapshot %T", v))
	}
	c.r.Restore(s.Rng)
	c.issued = s.Issued
	c.beat = s.Beat
	c.pool.restored(c.issued)
}
