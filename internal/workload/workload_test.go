package workload

import (
	"testing"

	"coemu/internal/amba"
	"coemu/internal/ip"
)

func drain(g ip.Generator, max int) []ip.Xfer {
	var out []ip.Xfer
	for i := 0; i < max; i++ {
		x, ok := g.Next()
		if !ok {
			break
		}
		out = append(out, x)
	}
	return out
}

func TestSequence(t *testing.T) {
	s := NewSequence(
		ip.Xfer{Addr: 1},
		ip.Xfer{Addr: 2},
	)
	xs := drain(s, 10)
	if len(xs) != 2 || xs[0].Addr != 1 || xs[1].Addr != 2 {
		t.Fatalf("sequence gave %+v", xs)
	}
	if _, ok := s.Next(); ok {
		t.Fatal("exhausted sequence must end")
	}
}

func TestSequenceSnapshot(t *testing.T) {
	s := NewSequence(ip.Xfer{Addr: 1}, ip.Xfer{Addr: 2}, ip.Xfer{Addr: 3})
	s.Next()
	snap := s.Save()
	a, _ := s.Next()
	s.Restore(snap)
	b, _ := s.Next()
	if a.Addr != b.Addr {
		t.Fatal("snapshot replay diverged")
	}
}

func TestStreamMarchesAndWraps(t *testing.T) {
	win := Window{Lo: 0x100, Hi: 0x140} // room for two 8-beat word bursts
	s := NewStream(win, true, amba.BurstIncr8, amba.Size32, 0, 0, 0)
	x0, _ := s.Next()
	x1, _ := s.Next()
	x2, _ := s.Next()
	if x0.Addr != 0x100 || x1.Addr != 0x120 {
		t.Fatalf("stream addrs %x %x", x0.Addr, x1.Addr)
	}
	if x2.Addr != 0x100 {
		t.Fatalf("stream did not wrap: %x", x2.Addr)
	}
	if len(x0.Data) != 8 {
		t.Fatalf("write stream carries %d data words", len(x0.Data))
	}
	if x0.Data[0] == x0.Data[1] {
		t.Fatal("data pattern is degenerate")
	}
}

func TestStreamBounded(t *testing.T) {
	s := NewStream(Window{0, 0x1000}, false, amba.BurstSingle, amba.Size32, 0, 0, 3)
	if got := len(drain(s, 100)); got != 3 {
		t.Fatalf("bounded stream gave %d transfers", got)
	}
}

func TestStreamReadCarriesNoData(t *testing.T) {
	s := NewStream(Window{0, 0x1000}, false, amba.BurstIncr4, amba.Size32, 0, 0, 1)
	x, _ := s.Next()
	if x.Data != nil {
		t.Fatal("read stream must not carry data")
	}
	if x.Write {
		t.Fatal("read stream issued a write")
	}
}

func TestStreamSnapshot(t *testing.T) {
	s := NewStream(Window{0, 0x1000}, true, amba.BurstIncr4, amba.Size32, 0, 0, 0)
	s.Next()
	snap := s.Save()
	a, _ := s.Next()
	s.Restore(snap)
	b, _ := s.Next()
	if a.Addr != b.Addr || a.Data[0] != b.Data[0] {
		t.Fatal("stream snapshot replay diverged")
	}
}

func TestDMACopyAlternates(t *testing.T) {
	d := NewDMACopy(Window{0x0, 0x100}, Window{0x200, 0x300}, amba.BurstIncr8, 1, 0)
	x0, _ := d.Next()
	x1, _ := d.Next()
	x2, _ := d.Next()
	if x0.Write || !x1.Write || x2.Write {
		t.Fatalf("DMA direction pattern wrong: %v %v %v", x0.Write, x1.Write, x2.Write)
	}
	if x0.Addr != 0x0 || x1.Addr != 0x200 || x2.Addr != 0x20 {
		t.Fatalf("DMA addresses %x %x %x", x0.Addr, x1.Addr, x2.Addr)
	}
	if x0.Gap != 1 {
		t.Fatalf("gap not propagated")
	}
}

func TestDMACopyRejectsIncr(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("INCR DMA must panic")
		}
	}()
	NewDMACopy(Window{0, 0x100}, Window{0x200, 0x300}, amba.BurstIncr, 0, 0)
}

func TestDMASnapshot(t *testing.T) {
	d := NewDMACopy(Window{0x0, 0x100}, Window{0x200, 0x300}, amba.BurstIncr4, 0, 0)
	d.Next()
	snap := d.Save()
	a, _ := d.Next()
	d.Restore(snap)
	b, _ := d.Next()
	if a.Addr != b.Addr || a.Write != b.Write {
		t.Fatal("DMA snapshot replay diverged")
	}
}

func TestCPUDeterminismAndLegality(t *testing.T) {
	mk := func() *CPU {
		return NewCPU([]Window{{0x0, 0x400}, {0x1000, 0x1400}}, 0.5, 4, 0, 9)
	}
	a, b := mk(), mk()
	for i := 0; i < 200; i++ {
		xa, _ := a.Next()
		xb, _ := b.Next()
		if xa.Addr != xb.Addr || xa.Write != xb.Write || xa.Burst != xb.Burst {
			t.Fatalf("CPU generators diverged at %d", i)
		}
		if !amba.Aligned(xa.Addr, xa.Size) {
			t.Fatalf("unaligned CPU address %x", xa.Addr)
		}
		// Every beat must stay inside one of the windows.
		for _, beat := range amba.BurstAddrs(xa.Addr, xa.Size, xa.Burst, xa.Beats()) {
			in := false
			for _, w := range []Window{{0x0, 0x400}, {0x1000, 0x1400}} {
				if beat >= w.Lo && beat < w.Hi {
					in = true
				}
			}
			if !in {
				t.Fatalf("beat %x escapes windows (xfer %+v)", beat, xa)
			}
		}
		if xa.Write && len(xa.Data) != xa.Beats() {
			t.Fatalf("write data count %d != beats %d", len(xa.Data), xa.Beats())
		}
	}
}

func TestCPUSnapshot(t *testing.T) {
	c := NewCPU([]Window{{0, 0x1000}}, 0.3, 2, 0, 4)
	for i := 0; i < 10; i++ {
		c.Next()
	}
	snap := c.Save()
	var first []ip.Xfer
	for i := 0; i < 20; i++ {
		x, _ := c.Next()
		first = append(first, x)
	}
	c.Restore(snap)
	for i := 0; i < 20; i++ {
		x, _ := c.Next()
		if x.Addr != first[i].Addr || x.Write != first[i].Write {
			t.Fatalf("CPU snapshot replay diverged at %d", i)
		}
	}
}

func TestWindowSpan(t *testing.T) {
	if (Window{0x100, 0x180}).Span() != 0x80 {
		t.Fatal("span wrong")
	}
}
