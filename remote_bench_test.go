package coemu_test

import (
	"context"
	"fmt"
	"testing"
	"time"

	"coemu/internal/remote"
	"coemu/internal/spec"
)

// BenchmarkRemoteChannel puts the paper's core claim on a real link:
// prediction packetizing exists to amortize channel latency, so on a
// TCP split with injected round-trip time the predictive (ALS,
// batched) engine must hold its throughput while the synchronous
// (conservative, per-cycle exchange) engine collapses linearly with
// RTT. Each endpoint sleeps RTT/2 before its authoritative data sends;
// the modeled reports stay bit-identical throughout — latency moves
// host wall-clock only.

// remoteBenchCycles keeps one synchronous iteration at 2 ms RTT around
// a second of wall clock.
const remoteBenchCycles = 600

// remoteBenchSpec builds the idle-heavy gapped stream split (the
// workload prediction packetizing exists for) as a wire-shippable
// spec.
func remoteBenchSpec(tb testing.TB, mode string, cycleBatch int) *spec.Spec {
	tb.Helper()
	doc := fmt.Sprintf(`{
	  "name": "remote-bench",
	  "design": {
	    "masters": [{"name": "dma", "domain": "acc",
	      "generator": {"kind": "stream", "window": {"lo": 0, "hi": "0x40000"},
	                    "write": true, "burst": "INCR8", "bits": 32, "gap": 48}}],
	    "slaves": [{"name": "mem", "domain": "sim", "kind": "sram",
	      "region": {"lo": 0, "hi": "0x80000"}}]
	  },
	  "run": {"mode": %q, "cycles": %d, "cycle_batch": %d}
	}`, mode, remoteBenchCycles, cycleBatch)
	sp, err := spec.Parse([]byte(doc))
	if err != nil {
		tb.Fatal(err)
	}
	return sp
}

// runRemotePair runs one mirrored socket-pair session with the given
// injected RTT and fails the benchmark on any error or divergence.
func runRemotePair(tb testing.TB, sp *spec.Spec, rtt time.Duration) {
	tb.Helper()
	res, err := remote.Pair(context.Background(), sp,
		remote.RunOptions{InjectRTT: rtt},
		remote.ServeOptions{InjectRTT: rtt})
	if err != nil {
		tb.Fatal(err)
	}
	if res.ClientErr != nil || res.ServerErr != nil {
		tb.Fatalf("remote run failed: client %v, server %v", res.ClientErr, res.ServerErr)
	}
}

func BenchmarkRemoteChannel(b *testing.B) {
	rtts := []struct {
		name string
		rtt  time.Duration
	}{
		{"rtt=0", 0},
		{"rtt=200us", 200 * time.Microsecond},
		{"rtt=2ms", 2 * time.Millisecond},
	}
	engines := []struct {
		name string
		sp   *spec.Spec
	}{
		// Synchronous: conservative lockstep, one exchange pair per
		// target cycle — every cycle pays the link RTT.
		{"synchronous", remoteBenchSpec(b, "conservative", 1)},
		// Predictive: ALS prediction packetizing with default batching —
		// the link is touched only when a packetized burst or a
		// misprediction makes it necessary.
		{"predictive", remoteBenchSpec(b, "als", 0)},
	}
	for _, r := range rtts {
		for _, e := range engines {
			b.Run(r.name+"/"+e.name, func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					runRemotePair(b, e.sp, r.rtt)
				}
				b.ReportMetric(float64(remoteBenchCycles)*float64(b.N)/b.Elapsed().Seconds(), "target-cyc/s")
			})
		}
	}
}

// TestRemotePredictiveBeatsSynchronous pins the benchmark's headline
// inequality as a plain test: at 2 ms injected RTT the predictive
// engine must finish the same modeled run materially faster than the
// synchronous one. The margin is enormous by construction (dozens of
// channel accesses versus thousands), so a 2x bar is safe against CI
// noise.
func TestRemotePredictiveBeatsSynchronous(t *testing.T) {
	if testing.Short() {
		t.Skip("2ms-RTT synchronous run takes ~1s of wall clock")
	}
	const rtt = 2 * time.Millisecond
	sync := remoteBenchSpec(t, "conservative", 1)
	pred := remoteBenchSpec(t, "als", 0)

	t0 := time.Now()
	runRemotePair(t, sync, rtt)
	syncDur := time.Since(t0)
	t0 = time.Now()
	runRemotePair(t, pred, rtt)
	predDur := time.Since(t0)

	t.Logf("synchronous %v, predictive %v (%.1fx)", syncDur, predDur, float64(syncDur)/float64(predDur))
	if predDur*2 > syncDur {
		t.Errorf("predictive batching (%v) did not beat synchronous exchange (%v) by 2x at %v RTT",
			predDur, syncDur, rtt)
	}
}
