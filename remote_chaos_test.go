package coemu_test

import (
	"bytes"
	"context"
	"errors"
	"testing"
	"time"

	"coemu/internal/channel"
	"coemu/internal/channel/tcpchan"
	"coemu/internal/faultplan"
	"coemu/internal/remote"
	"coemu/internal/spec"
)

// Chaos over sockets: the cross-process split must absorb everything
// the in-process chaos suite absorbs, plus the failure modes only a
// real network has. Two fault surfaces compose here:
//
//   - wire faults (tcpchan Options.Faults): frames corrupted, delayed
//     or duplicated on the socket itself, healed below the engine by
//     the transport's checksum-and-retransmit ARQ — the modeled run
//     never sees them;
//   - modeled faults (spec fault_plan.channel): the FaultEndpoint
//     chaos layer riding above the transport, mirrored identically in
//     both processes by the shared spec seed — survivable plans are
//     absorbed, corruption surfaces as the same typed error in both
//     mirrors.
//
// Every surviving run must stay byte-identical to the fault-free
// in-process run, including across a mid-run connection kill healed by
// reconnect-resync.

// chaosVariant is remoteVariant for the chaos suite, with an optional
// modeled channel fault plan attached to the spec (so both mirrors
// derive the identical fault schedule from the handshake meta).
func chaosVariant(t *testing.T, sp *spec.Spec, cf *faultplan.ChannelFault, seed uint64) *spec.Spec {
	t.Helper()
	v := remoteVariant(t, sp, 1, 1)
	if cf != nil {
		v.Run.FaultPlan = &faultplan.Plan{Seed: seed, Channel: cf}
	}
	return v
}

// TestChaosRemoteWireFaultsBitIdentical injects corruption, duplicates
// and delay into the socket frames of both endpoints. The transport's
// ARQ must heal all of it: the reports stay byte-identical to the
// clean in-process run, and the transport counters prove the faults
// actually fired.
func TestChaosRemoteWireFaultsBitIdentical(t *testing.T) {
	wire := &faultplan.ChannelFault{Corrupt: 0.02, Duplicate: 0.05, Delay: 0.02, MaxDelayUS: 30}
	for name, sp := range exampleSpecs(t) {
		t.Run(name, func(t *testing.T) {
			v := chaosVariant(t, sp, nil, 0)
			want, _ := runSpec(t, v, nil)
			res, err := remote.Pair(context.Background(), v,
				remote.RunOptions{Faults: wire, FaultSeed: 1001},
				remote.ServeOptions{Faults: wire, FaultSeed: 2002})
			if err != nil {
				t.Fatal(err)
			}
			if res.ClientErr != nil || res.ServerErr != nil {
				t.Fatalf("wire faults broke the run: client %v, server %v", res.ClientErr, res.ServerErr)
			}
			if !bytes.Equal(res.Client.View, want) || !bytes.Equal(res.ServerView, want) {
				t.Errorf("report diverged under wire faults\nclient: %s\nserver: %s\nclean:  %s",
					res.Client.View, res.ServerView, want)
			}
			injected := res.Client.Transport.WireFaults + res.ServerStats.WireFaults
			if injected == 0 {
				t.Fatal("no wire faults injected; test is vacuous")
			}
			healed := res.Client.Transport.CorruptFrames + res.Client.Transport.Dups +
				res.ServerStats.CorruptFrames + res.ServerStats.Dups
			if healed == 0 {
				t.Fatalf("%d faults injected but no receiver ever noticed one", injected)
			}
		})
	}
}

// TestChaosRemoteModeledFaultsBitIdentical runs the in-process chaos
// suite's survivable plan — every modeled frame duplicated, some
// delayed — through the spec's fault_plan over a real socket. Both
// mirrors derive the same fault schedule from the handshake meta, so
// the runs stay bit-identical to the fault-free baseline.
func TestChaosRemoteModeledFaultsBitIdentical(t *testing.T) {
	plan := &faultplan.ChannelFault{Duplicate: 1, Delay: 0.01, MaxDelayUS: 5}
	for name, sp := range exampleSpecs(t) {
		t.Run(name, func(t *testing.T) {
			clean := chaosVariant(t, sp, nil, 0)
			want, _ := runSpec(t, clean, nil)
			v := chaosVariant(t, sp, plan, 7)
			res, err := remote.Pair(context.Background(), v, remote.RunOptions{}, remote.ServeOptions{})
			if err != nil {
				t.Fatal(err)
			}
			if res.ClientErr != nil || res.ServerErr != nil {
				t.Fatalf("modeled faults broke the run: client %v, server %v", res.ClientErr, res.ServerErr)
			}
			if !bytes.Equal(res.Client.View, want) || !bytes.Equal(res.ServerView, want) {
				t.Errorf("report diverged under modeled faults\nclient: %s\nserver: %s\nclean:  %s",
					res.Client.View, res.ServerView, want)
			}
		})
	}
}

// TestChaosRemoteCorruptionSurfacesBothMirrors forces modeled frame
// corruption and requires the identical typed error in both processes:
// a FaultEndpoint bit flip is injected identically by both mirrors, so
// both must fail with channel.ErrFrameCorrupt — clean symmetric
// failure, not divergence or hang.
func TestChaosRemoteCorruptionSurfacesBothMirrors(t *testing.T) {
	sp := exampleSpecs(t)["quickstart"]
	v := chaosVariant(t, sp, &faultplan.ChannelFault{Corrupt: 1}, 0)
	res, err := remote.Pair(context.Background(), v, remote.RunOptions{}, remote.ServeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !errors.Is(res.ClientErr, channel.ErrFrameCorrupt) {
		t.Errorf("client err = %v, want channel.ErrFrameCorrupt", res.ClientErr)
	}
	if !errors.Is(res.ServerErr, channel.ErrFrameCorrupt) {
		t.Errorf("server err = %v, want channel.ErrFrameCorrupt", res.ServerErr)
	}
}

// TestChaosRemoteKillMidRunBitIdentical severs the TCP connection
// while the run is in flight. The client transport must redial, resume
// via the handshake's expect position, replay its retransmission
// window, and finish with the byte-identical report.
func TestChaosRemoteKillMidRunBitIdentical(t *testing.T) {
	sp := exampleSpecs(t)["dma-stream"]
	v := chaosVariant(t, sp, nil, 0)
	want, _ := runSpec(t, v, nil)

	res, err := remote.Pair(context.Background(), v,
		remote.RunOptions{OnTransport: func(tr *tcpchan.Transport) {
			time.AfterFunc(3*time.Millisecond, tr.Kill)
			time.AfterFunc(9*time.Millisecond, tr.Kill)
		}},
		remote.ServeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.ClientErr != nil || res.ServerErr != nil {
		t.Fatalf("killed run never healed: client %v, server %v", res.ClientErr, res.ServerErr)
	}
	if !bytes.Equal(res.Client.View, want) || !bytes.Equal(res.ServerView, want) {
		t.Errorf("report diverged across reconnect\nclient: %s\nserver: %s\nclean:  %s",
			res.Client.View, res.ServerView, want)
	}
	if res.Client.Transport.Reconnects == 0 {
		t.Fatalf("no reconnect recorded (%+v); kill never landed mid-run", res.Client.Transport)
	}
}
