package coemu_test

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"strings"
	"testing"
	"time"

	"coemu"
	"coemu/internal/channel/tcpchan"
	"coemu/internal/remote"
	"coemu/internal/spec"
)

// Differential tests for cross-process co-emulation: splitting the two
// domains across a real TCP socket — whether both ends live in this
// test binary or in two separate OS processes — must not change a
// single bit of the canonical report. The modeled experiment is fully
// determined by the spec; the transport is plumbing.

// remoteCycleCap bounds run length for the TCP differentials: long
// enough to cross flush, report-exchange, rollback and delta-snapshot
// paths on every example, short enough to keep dozens of socket-pair
// runs fast.
const remoteCycleCap = 4000

// remoteVariant clones sp with capped cycles and the given host-side
// knob settings. Cloning goes through JSON — the same round trip the
// spec takes inside the connect handshake.
func remoteVariant(t *testing.T, sp *coemu.Spec, batch, cadence int) *coemu.Spec {
	t.Helper()
	b, err := json.Marshal(sp)
	if err != nil {
		t.Fatal(err)
	}
	cl, err := spec.Parse(b)
	if err != nil {
		t.Fatal(err)
	}
	if cl.Run.Cycles > remoteCycleCap {
		cl.Run.Cycles = remoteCycleCap
	}
	cl.Run.CycleBatch = batch
	cl.Run.DeltaCadence = cadence
	return cl
}

// TestRemoteDifferentialBitIdentical runs every example spec
// in-process and cross-process (two mirrored engines over a loopback
// TCP socket pair in this binary), sweeping the host-side batching and
// snapshot knobs, and requires byte-identical canonical report JSON on
// all three reports plus identical channel statistics.
func TestRemoteDifferentialBitIdentical(t *testing.T) {
	for name, sp := range exampleSpecs(t) {
		t.Run(name, func(t *testing.T) {
			base := remoteVariant(t, sp, 1, 1)
			want, wantRep := runSpec(t, base, nil)
			for _, batch := range []int{1, 64} {
				for _, cadence := range []int{1, 16} {
					t.Run(fmt.Sprintf("batch=%d_cadence=%d", batch, cadence), func(t *testing.T) {
						v := remoteVariant(t, sp, batch, cadence)
						res, err := remote.Pair(context.Background(), v, remote.RunOptions{}, remote.ServeOptions{})
						if err != nil {
							t.Fatal(err)
						}
						if res.ClientErr != nil {
							t.Fatalf("client mirror: %v", res.ClientErr)
						}
						if res.ServerErr != nil {
							t.Fatalf("serving mirror: %v", res.ServerErr)
						}
						if !bytes.Equal(res.Client.View, want) {
							t.Errorf("client report diverged from in-process run\nremote: %s\nlocal:  %s", res.Client.View, want)
						}
						if !bytes.Equal(res.ServerView, want) {
							t.Errorf("serving report diverged from in-process run\nremote: %s\nlocal:  %s", res.ServerView, want)
						}
						if res.Client.Report.Channel != wantRep.Channel {
							t.Errorf("client channel stats = %+v, want %+v", res.Client.Report.Channel, wantRep.Channel)
						}
						if res.ServerReport.Channel != wantRep.Channel {
							t.Errorf("server channel stats = %+v, want %+v", res.ServerReport.Channel, wantRep.Channel)
						}
					})
				}
			}
		})
	}
}

// helperEnv flags the re-exec'd test binary into domain-server mode.
const helperEnv = "COEMU_TEST_DOMAIN_SERVE"

// TestHelperDomainServe is not a test: it is the server half of the
// true two-process differential, run in a child process by
// TestRemoteTwoProcessBitIdentical. It hosts one accelerator-domain
// session on an ephemeral port, announces the address on stdout, and
// exits when the session completes.
func TestHelperDomainServe(t *testing.T) {
	if os.Getenv(helperEnv) != "1" {
		t.Skip("helper process for TestRemoteTwoProcessBitIdentical")
	}
	l, err := tcpchan.Listen("127.0.0.1:0")
	if err != nil {
		fmt.Printf("HELPER_ERR listen: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("LISTENING %s\n", l.Addr())
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	if err := remote.Serve(ctx, l, remote.ServeOptions{Once: true}); err != nil {
		fmt.Printf("HELPER_ERR serve: %v\n", err)
		os.Exit(1)
	}
	fmt.Println("HELPER_OK")
}

// TestRemoteTwoProcessBitIdentical re-executes this test binary as a
// separate OS process hosting the accelerator domain, dials it over
// real TCP, and requires the canonical report to match the in-process
// run byte for byte. This is the no-shared-memory case: the only
// things the two mirrors have in common are the spec (shipped in the
// handshake) and the socket.
func TestRemoteTwoProcessBitIdentical(t *testing.T) {
	sp := exampleSpecs(t)["quickstart"]
	v := remoteVariant(t, sp, 1, 1)
	want, wantRep := runSpec(t, v, nil)

	cmd := exec.Command(os.Args[0], "-test.run=^TestHelperDomainServe$", "-test.v")
	cmd.Env = append(os.Environ(), helperEnv+"=1")
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer cmd.Process.Kill()

	sc := bufio.NewScanner(stdout)
	addr := ""
	for sc.Scan() {
		line := sc.Text()
		if a, ok := strings.CutPrefix(line, "LISTENING "); ok {
			addr = a
			break
		}
		if strings.HasPrefix(line, "HELPER_ERR") {
			t.Fatalf("server process: %s", line)
		}
	}
	if addr == "" {
		t.Fatalf("server process never announced an address: %v", sc.Err())
	}
	// Drain the rest of the child's output in the background so it
	// cannot block on a full pipe.
	drained := make(chan string, 1)
	go func() {
		var rest strings.Builder
		for sc.Scan() {
			rest.WriteString(sc.Text())
			rest.WriteByte('\n')
		}
		drained <- rest.String()
	}()

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	res, err := remote.Run(ctx, addr, v, remote.RunOptions{})
	if err != nil {
		t.Fatalf("client mirror against server process: %v", err)
	}
	if !bytes.Equal(res.View, want) {
		t.Errorf("two-process report diverged\nremote: %s\nlocal:  %s", res.View, want)
	}
	if res.Report.Channel != wantRep.Channel {
		t.Errorf("two-process channel stats = %+v, want %+v", res.Report.Channel, wantRep.Channel)
	}
	out := <-drained // pipe EOF precedes Wait, which closes it
	if err := cmd.Wait(); err != nil {
		t.Fatalf("server process exited with error: %v\noutput:\n%s", err, out)
	}
	if !strings.Contains(out, "HELPER_OK") {
		t.Fatalf("server process never confirmed a clean session:\n%s", out)
	}
}
