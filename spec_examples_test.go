package coemu_test

import (
	"encoding/json"
	"path/filepath"
	"testing"

	"coemu"
	"coemu/internal/service"
)

// Golden round-trip tests: every spec file under examples/ must compile
// to a run whose modeled metrics — simulator/accelerator/channel/state
// time per committed cycle, behavioral counters, channel statistics —
// are identical to the closure-built design it mirrors. The comparison
// serializes both reports through the service's deterministic JSON view
// and requires byte equality.

// closure equivalents of each examples/<name>/spec.json, mirroring the
// designs in the example programs.
var exampleDesigns = map[string]struct {
	design func() coemu.Design
	cfg    coemu.Config
	cycles int64
}{
	"quickstart": {
		design: func() coemu.Design {
			return coemu.Design{
				Masters: []coemu.MasterSpec{{
					Name: "dma", Domain: coemu.AccDomain,
					NewGen: func() coemu.Generator {
						return coemu.NewStream(coemu.Window{Lo: 0, Hi: 0x10000}, true,
							coemu.BurstIncr8, coemu.Size32, 0, 0, 0)
					},
				}},
				Slaves: []coemu.SlaveSpec{{
					Name: "mem", Domain: coemu.SimDomain,
					Region: coemu.Region{Lo: 0, Hi: 0x20000},
					New:    func() coemu.Slave { return coemu.NewSRAM("mem") },
				}},
			}
		},
		cfg:    coemu.Config{Mode: coemu.ALS},
		cycles: 50000,
	},
	"dma-stream": {
		design: func() coemu.Design {
			return coemu.Design{
				Masters: []coemu.MasterSpec{{
					Name: "video-dma", Domain: coemu.AccDomain,
					NewGen: func() coemu.Generator {
						return coemu.NewStream(coemu.Window{Lo: 0, Hi: 0x100000}, true,
							coemu.BurstIncr16, coemu.Size32, 0, 1, 0)
					},
				}},
				Slaves: []coemu.SlaveSpec{{
					Name: "framebuf", Domain: coemu.SimDomain,
					Region:    coemu.Region{Lo: 0, Hi: 0x200000},
					New:       func() coemu.Slave { return coemu.NewMemory("framebuf", 1, 0) },
					WaitFirst: 1, WaitNext: 0,
				}},
			}
		},
		cfg:    coemu.Config{Mode: coemu.ALS, LOBDepth: 64},
		cycles: 40000,
	},
	"multimaster": {
		design: func() coemu.Design {
			return coemu.Design{
				Masters: []coemu.MasterSpec{
					{
						Name: "vdma", Domain: coemu.AccDomain,
						NewGen: func() coemu.Generator {
							return coemu.NewStream(coemu.Window{Lo: 0x00000, Hi: 0x08000},
								true, coemu.BurstIncr8, coemu.Size32, 0, 4, 0)
						},
					},
					{
						Name: "cpu", Domain: coemu.SimDomain,
						NewGen: func() coemu.Generator {
							return coemu.NewCPU([]coemu.Window{
								{Lo: 0x00000, Hi: 0x08000},
								{Lo: 0x10000, Hi: 0x12000},
							}, 0.6, 5, 0, 2024)
						},
					},
					{
						Name: "pdma", Domain: coemu.AccDomain,
						NewGen: func() coemu.Generator {
							return coemu.NewDMACopy(
								coemu.Window{Lo: 0x00000, Hi: 0x04000},
								coemu.Window{Lo: 0x10000, Hi: 0x11000},
								coemu.BurstIncr4, 6, 0)
						},
					},
				},
				Slaves: []coemu.SlaveSpec{
					{
						Name: "dram", Domain: coemu.SimDomain,
						Region:    coemu.Region{Lo: 0x00000, Hi: 0x10000},
						New:       func() coemu.Slave { return coemu.NewMemory("dram", 2, 1) },
						WaitFirst: 2, WaitNext: 1,
					},
					{
						Name: "spm", Domain: coemu.AccDomain,
						Region: coemu.Region{Lo: 0x10000, Hi: 0x14000},
						New:    func() coemu.Slave { return coemu.NewSRAM("spm") },
					},
					{
						Name: "timer", Domain: coemu.AccDomain,
						Region:  coemu.Region{Lo: 0x20000, Hi: 0x20100},
						New:     func() coemu.Slave { return coemu.NewIRQPeriph("timer", 0x1) },
						IRQMask: 0x1, WaitFirst: 1, WaitNext: 1,
					},
				},
			}
		},
		cfg:    coemu.Config{Mode: coemu.Auto},
		cycles: 30000,
	},
	"rollback-storm": {
		design: func() coemu.Design {
			return coemu.Design{
				Masters: []coemu.MasterSpec{{
					Name: "dma", Domain: coemu.AccDomain,
					NewGen: func() coemu.Generator {
						return coemu.NewStream(coemu.Window{Lo: 0, Hi: 0x40000},
							true, coemu.BurstIncr8, coemu.Size32, 0, 0, 0)
					},
				}},
				Slaves: []coemu.SlaveSpec{{
					Name: "flaky", Domain: coemu.SimDomain,
					Region:    coemu.Region{Lo: 0, Hi: 0x80000},
					New:       func() coemu.Slave { return coemu.NewJitterMemory("flaky", 1, 2, 7) },
					WaitFirst: 1, WaitNext: 1,
				}},
			}
		},
		cfg:    coemu.Config{Mode: coemu.ALS},
		cycles: 30000,
	},
	"split-latency": {
		design: func() coemu.Design {
			return coemu.Design{
				Masters: []coemu.MasterSpec{
					{
						Name: "fetcher", Domain: coemu.AccDomain,
						NewGen: func() coemu.Generator {
							return coemu.NewStream(coemu.Window{Lo: 0, Hi: 0x8000},
								true, coemu.BurstIncr8, coemu.Size32, 0, 0, 0)
						},
					},
					{
						Name: "logger", Domain: coemu.SimDomain,
						NewGen: func() coemu.Generator {
							return coemu.NewStream(coemu.Window{Lo: 0x10000, Hi: 0x12000},
								true, coemu.BurstIncr4, coemu.Size32, 0, 1, 0)
						},
					},
				},
				Slaves: []coemu.SlaveSpec{
					{
						Name: "dramc", Domain: coemu.SimDomain,
						Region:       coemu.Region{Lo: 0, Hi: 0x10000},
						New:          func() coemu.Slave { return coemu.NewSplitMemory("dramc", 1, 4, 12) },
						SplitCapable: true,
						WaitFirst:    1, WaitNext: 1,
					},
					{
						Name: "sram", Domain: coemu.AccDomain,
						Region: coemu.Region{Lo: 0x10000, Hi: 0x14000},
						New:    func() coemu.Slave { return coemu.NewSRAM("sram") },
					},
				},
			}
		},
		cfg:    coemu.Config{Mode: coemu.Auto},
		cycles: 30000,
	},
}

// metricBytes runs a design and serializes its report through the
// deterministic JSON view.
func metricBytes(t *testing.T, d coemu.Design, cfg coemu.Config, cycles int64) []byte {
	t.Helper()
	rep, err := coemu.Run(d, cfg, cycles)
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(service.NewReportView(rep))
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestExampleSpecsMatchClosureDesigns(t *testing.T) {
	for name, golden := range exampleDesigns {
		t.Run(name, func(t *testing.T) {
			sp, err := coemu.LoadSpec(filepath.Join("examples", name, "spec.json"))
			if err != nil {
				t.Fatal(err)
			}
			d, cfg, err := sp.Compile()
			if err != nil {
				t.Fatal(err)
			}
			if sp.Run.Cycles != golden.cycles {
				t.Fatalf("spec cycles %d, golden %d", sp.Run.Cycles, golden.cycles)
			}
			got := metricBytes(t, d, cfg, sp.Run.Cycles)
			want := metricBytes(t, golden.design(), golden.cfg, golden.cycles)
			if string(got) != string(want) {
				t.Errorf("spec-compiled metrics differ from closure-built design:\nspec:    %s\nclosure: %s", got, want)
			}
		})
	}
}

// TestExampleSpecsCoverExamples pins the 1:1 pairing: every example
// program has a spec counterpart in this golden table and on disk.
func TestExampleSpecsCoverExamples(t *testing.T) {
	mains, err := filepath.Glob("examples/*/main.go")
	if err != nil {
		t.Fatal(err)
	}
	if len(mains) == 0 {
		t.Fatal("no examples found")
	}
	for _, m := range mains {
		name := filepath.Base(filepath.Dir(m))
		if _, ok := exampleDesigns[name]; !ok {
			t.Errorf("example %q has no golden closure design in this test", name)
		}
		if _, err := coemu.LoadSpec(filepath.Join("examples", name, "spec.json")); err != nil {
			t.Errorf("example %q: %v", name, err)
		}
	}
}

func TestExampleSpecHashesStable(t *testing.T) {
	// Hash determinism across repeated loads of the same files.
	for name := range exampleDesigns {
		path := filepath.Join("examples", name, "spec.json")
		a, err := coemu.LoadSpec(path)
		if err != nil {
			t.Fatal(err)
		}
		b, err := coemu.LoadSpec(path)
		if err != nil {
			t.Fatal(err)
		}
		ha, err := a.CanonicalHash()
		if err != nil {
			t.Fatal(err)
		}
		hb, err := b.CanonicalHash()
		if err != nil {
			t.Fatal(err)
		}
		if ha != hb {
			t.Errorf("%s: hash unstable across loads", name)
		}
	}
	// And distinctness: the five examples are five different runs.
	seen := map[string]string{}
	for name := range exampleDesigns {
		sp, err := coemu.LoadSpec(filepath.Join("examples", name, "spec.json"))
		if err != nil {
			t.Fatal(err)
		}
		h, err := sp.CanonicalHash()
		if err != nil {
			t.Fatal(err)
		}
		if other, dup := seen[h]; dup {
			t.Errorf("%s and %s share a canonical hash", name, other)
		}
		seen[h] = name
	}
}
