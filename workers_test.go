package coemu_test

import (
	"encoding/json"
	"runtime"
	"testing"

	"coemu"
	"coemu/internal/service"
	"coemu/internal/trace"
)

// Differential tests for the parallel cycle loop (Config.Workers /
// run.workers). The contract under test is the same as the batching
// and delta suites pin for their knobs: Workers is a host-side fast
// path, so every modeled metric — ledger, behavioral counters, channel
// statistics, histograms, traces — is bit-identical at every width, on
// every workload, crossed with the other host knobs and under fault
// storms. The engine deliberately never clamps Workers to GOMAXPROCS;
// the CI parallel-determinism matrix runs this suite at GOMAXPROCS
// 1, 2 and 4 to prove width-independence at every host parallelism.

// workersSweep is the width grid: 2 (minimal pipeline) and 4 (domain
// pipeline plus per-bus drive fan-out), compared against the
// sequential reference (1). GOMAXPROCS is appended when it exceeds
// the grid so a wide CI runner also tests its native width.
func workersSweep() []int {
	ws := []int{2, 4}
	if n := runtime.GOMAXPROCS(0); n > 4 {
		ws = append(ws, n)
	}
	return ws
}

// runSpecN is runSpec with a cycle-budget cap: the sweep crosses
// enough dimensions that full example budgets would dominate the
// suite's runtime without adding coverage.
func runSpecN(t *testing.T, sp *coemu.Spec, cycles int64, mutate func(*coemu.Config)) ([]byte, *coemu.Report) {
	t.Helper()
	d, cfg, err := sp.Compile()
	if err != nil {
		t.Fatal(err)
	}
	if mutate != nil {
		mutate(&cfg)
	}
	rep, err := coemu.Run(d, cfg, cycles)
	if err != nil {
		t.Fatal(err)
	}
	b := marshalView(t, rep)
	return b, rep
}

func capCycles(sp *coemu.Spec, cap int64) int64 {
	if sp.Run.Cycles < cap {
		return sp.Run.Cycles
	}
	return cap
}

// TestWorkersSweepBitIdentical is the acceptance sweep: every example
// spec, crossed with cycle_batch {1, 64} and delta_cadence {1, 16},
// must report byte-identically at every worker width.
func TestWorkersSweepBitIdentical(t *testing.T) {
	for name, sp := range exampleSpecs(t) {
		t.Run(name, func(t *testing.T) {
			cycles := capCycles(sp, 8000)
			for _, batch := range []int{1, 64} {
				for _, cadence := range []int{1, 16} {
					host := func(w int) func(*coemu.Config) {
						return func(c *coemu.Config) {
							c.CycleBatch = batch
							c.DeltaCadence = cadence
							c.Workers = w
						}
					}
					want, _ := runSpecN(t, sp, cycles, host(1))
					for _, w := range workersSweep() {
						got, _ := runSpecN(t, sp, cycles, host(w))
						if string(got) != string(want) {
							t.Errorf("workers=%d batch=%d cadence=%d: report differs from sequential:\npar: %s\nseq: %s",
								w, batch, cadence, got, want)
						}
					}
				}
			}
		})
	}
}

// TestWorkersSweepUnderInjectedFaultStorm repeats the sweep under an
// aggressive fault injector — the regime where the pipelined
// follow-up detects mispredictions worker-side and every rollback
// (delta-ring restore + roll-forth) runs against a freshly joined
// worker lane. The reference run must roll back a lot, or the sweep
// proves nothing.
func TestWorkersSweepUnderInjectedFaultStorm(t *testing.T) {
	for name, sp := range exampleSpecs(t) {
		t.Run(name, func(t *testing.T) {
			cycles := capCycles(sp, 8000)
			storm := func(w int) func(*coemu.Config) {
				return func(c *coemu.Config) {
					c.Accuracy = 0.8
					c.FaultSeed = 1234
					c.Workers = w
				}
			}
			want, wantRep := runSpecN(t, sp, cycles, storm(1))
			if sp.Run.Mode != "conservative" && wantRep.Stats.Rollbacks == 0 {
				t.Fatal("fault storm produced no rollbacks; the sweep would prove nothing")
			}
			for _, w := range workersSweep() {
				got, gotRep := runSpecN(t, sp, cycles, storm(w))
				if gotRep.Stats.Rollbacks != wantRep.Stats.Rollbacks {
					t.Errorf("workers=%d: %d rollbacks, sequential has %d",
						w, gotRep.Stats.Rollbacks, wantRep.Stats.Rollbacks)
				}
				if string(got) != string(want) {
					t.Errorf("workers=%d: report differs from sequential under the fault storm", w)
				}
			}
		})
	}
}

// TestWorkersBitIdenticalIdleHeavy is the non-vacuousness guard for
// the pipelined transition's interaction with the predicted-quiescence
// fast path: the gapped stream transitions constantly and batches on
// both the run-ahead and follow-up sides. The sequential reference
// must show transitions and batched cycles, and every width must
// reproduce its report.
func TestWorkersBitIdenticalIdleHeavy(t *testing.T) {
	const cycles = 20000
	for _, mode := range []coemu.Mode{coemu.ALS, coemu.SLA, coemu.Auto} {
		t.Run(mode.String(), func(t *testing.T) {
			want, wantRep := runDesign(t, gappedStreamDesign(48),
				coemu.Config{Mode: mode}, cycles)
			if wantRep.Stats.BatchedCycles == 0 {
				t.Fatal("idle-heavy reference never batched; the differential is vacuous")
			}
			// SLA on this design declines every transition (the stream
			// lives in the accelerator domain), which is itself a path
			// worth pinning; the other modes must really pipeline.
			wantTransitions := wantRep.Stats.Transitions > 0
			for _, w := range workersSweep() {
				got, rep := runDesign(t, gappedStreamDesign(48),
					coemu.Config{Mode: mode, Workers: w}, cycles)
				if wantTransitions && rep.Stats.Transitions == 0 {
					t.Errorf("workers=%d: no transitions; the pipeline never ran", w)
				}
				if string(got) != string(want) {
					t.Errorf("workers=%d report differs from sequential on the idle-heavy design", w)
				}
			}
		})
	}
}

// TestWorkersConservativeMode pins the domain-parallel conservative
// cycle (no transitions at all — pure lockstep) across widths.
func TestWorkersConservativeMode(t *testing.T) {
	sp := exampleSpecs(t)["multimaster"]
	cycles := capCycles(sp, 8000)
	want, _ := runSpecN(t, sp, cycles, func(c *coemu.Config) { c.Mode = coemu.Conservative })
	for _, w := range workersSweep() {
		got, _ := runSpecN(t, sp, cycles, func(c *coemu.Config) {
			c.Mode = coemu.Conservative
			c.Workers = w
		})
		if string(got) != string(want) {
			t.Errorf("workers=%d: conservative report differs from sequential", w)
		}
	}
}

// TestWorkersFallbackPathsBitIdentical pins the configurations where
// the transition pipeline gates itself off (wire codec, attached
// tracer, paper-strict transitions) but conservative cycles and bus
// evaluation still parallelize: reports must stay bit-identical, and
// with tracing attached the event streams must match event for event.
func TestWorkersFallbackPathsBitIdentical(t *testing.T) {
	sp := exampleSpecs(t)["multimaster"]
	cycles := capCycles(sp, 8000)

	t.Run("wire-codec", func(t *testing.T) {
		want, _ := runSpecN(t, sp, cycles, func(c *coemu.Config) { c.WirePackets = true })
		for _, w := range workersSweep() {
			got, _ := runSpecN(t, sp, cycles, func(c *coemu.Config) {
				c.WirePackets = true
				c.Workers = w
			})
			if string(got) != string(want) {
				t.Errorf("workers=%d: wire-codec report differs from sequential", w)
			}
		}
	})

	t.Run("paper-strict", func(t *testing.T) {
		want, _ := runSpecN(t, sp, cycles, func(c *coemu.Config) { c.PaperStrictTransitions = true })
		for _, w := range workersSweep() {
			got, _ := runSpecN(t, sp, cycles, func(c *coemu.Config) {
				c.PaperStrictTransitions = true
				c.Workers = w
			})
			if string(got) != string(want) {
				t.Errorf("workers=%d: paper-strict report differs from sequential", w)
			}
		}
	})

	t.Run("tracer", func(t *testing.T) {
		runTraced := func(w int) ([]byte, []trace.Event) {
			rec := trace.NewRecorder(1 << 16)
			b, _ := runSpecN(t, sp, cycles, func(c *coemu.Config) {
				c.Tracer = rec
				c.Workers = w
			})
			return b, rec.Events()
		}
		want, wantEv := runTraced(1)
		for _, w := range workersSweep() {
			got, gotEv := runTraced(w)
			if string(got) != string(want) {
				t.Errorf("workers=%d: traced report differs from sequential", w)
			}
			if len(gotEv) != len(wantEv) {
				t.Errorf("workers=%d: %d trace events, sequential has %d", w, len(gotEv), len(wantEv))
				continue
			}
			for i := range wantEv {
				if gotEv[i] != wantEv[i] {
					t.Errorf("workers=%d: trace event %d differs: %+v vs %+v", w, i, gotEv[i], wantEv[i])
					break
				}
			}
		}
	})
}

// TestWorkersKeepTraceEquivalence requires the committed MSABS stream
// — not just the counters — to be cycle-identical under the pipeline,
// with the protocol checker live on the worker goroutine.
func TestWorkersKeepTraceEquivalence(t *testing.T) {
	sp := exampleSpecs(t)["multimaster"]
	cycles := capCycles(sp, 5000)
	run := func(w int) *coemu.Report {
		d, cfg, err := sp.Compile()
		if err != nil {
			t.Fatal(err)
		}
		cfg.KeepTrace = true
		cfg.CheckProtocol = true
		cfg.Workers = w
		rep, err := coemu.Run(d, cfg, cycles)
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	want := run(1)
	for _, w := range workersSweep() {
		got := run(w)
		if len(got.Trace) != len(want.Trace) {
			t.Errorf("workers=%d: trace lengths differ: %d vs %d", w, len(got.Trace), len(want.Trace))
			continue
		}
		for i := range want.Trace {
			if !got.Trace[i].Equal(want.Trace[i]) {
				t.Errorf("workers=%d: committed trace diverged at cycle %d", w, i)
				break
			}
		}
	}
}

// marshalView serializes a report through the service's deterministic
// JSON view (the same projection every differential suite compares).
func marshalView(t *testing.T, rep *coemu.Report) []byte {
	t.Helper()
	b, err := json.Marshal(service.NewReportView(rep))
	if err != nil {
		t.Fatal(err)
	}
	return b
}
